// Package sym implements affine symbolic expressions over the φ variables
// of the FastFlip formalism: φ_{s,k} is the SDC magnitude introduced into
// output k of section instance s by an error inside s (§4.3). The SDC
// propagation analysis composes per-section bounds into an end-to-end
// expression like the paper's Equation 2:
//
//	Δ(O_fin) ≤ 4174.8·φ_{s11} + 434.3·φ_{s12} + ... + φ_{s24}
//
// All coefficients are non-negative, so the sum of two expressions is a
// sound (conservative) upper bound for their maximum.
package sym

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies one φ variable: output Out of section instance Inst
// (an index into the trace's instance list).
type Var struct {
	Inst int
	Out  int
}

func (v Var) String() string { return fmt.Sprintf("phi[%d.%d]", v.Inst, v.Out) }

// Expr is a non-negative affine expression Σ coef·φ + const.
type Expr struct {
	coef  map[Var]float64
	konst float64
}

// Zero returns the zero expression.
func Zero() *Expr { return &Expr{} }

// NewVar returns the expression 1·v.
func NewVar(v Var) *Expr {
	return &Expr{coef: map[Var]float64{v: 1}}
}

// Clone returns a deep copy.
func (e *Expr) Clone() *Expr {
	c := &Expr{konst: e.konst}
	if len(e.coef) > 0 {
		c.coef = make(map[Var]float64, len(e.coef))
		for v, k := range e.coef {
			c.coef[v] = k
		}
	}
	return c
}

// AddScaled adds k times other into e and returns e. Negative k panics:
// SDC magnitudes and amplification factors are non-negative by
// construction, and allowing cancellation would be unsound.
func (e *Expr) AddScaled(k float64, other *Expr) *Expr {
	if k < 0 {
		panic("sym: negative scale factor")
	}
	if k == 0 || other == nil {
		return e
	}
	if len(other.coef) > 0 && e.coef == nil {
		e.coef = make(map[Var]float64, len(other.coef))
	}
	for v, c := range other.coef {
		e.coef[v] += k * c
	}
	e.konst += k * other.konst
	return e
}

// AddVar adds k·v into e and returns e.
func (e *Expr) AddVar(v Var, k float64) *Expr {
	if k < 0 {
		panic("sym: negative coefficient")
	}
	if e.coef == nil {
		e.coef = make(map[Var]float64, 1)
	}
	e.coef[v] += k
	return e
}

// Coef returns the coefficient of v.
func (e *Expr) Coef(v Var) float64 { return e.coef[v] }

// Const returns the constant term.
func (e *Expr) Const() float64 { return e.konst }

// Vars returns the variables with non-zero coefficients in a deterministic
// order.
func (e *Expr) Vars() []Var {
	vars := make([]Var, 0, len(e.coef))
	for v, c := range e.coef {
		if c != 0 {
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].Inst != vars[j].Inst {
			return vars[i].Inst < vars[j].Inst
		}
		return vars[i].Out < vars[j].Out
	})
	return vars
}

// Eval evaluates the expression with φ values supplied by assign; variables
// not assigned evaluate as zero (the single-error model zeroes every φ
// outside the injected section, §4.4).
func (e *Expr) Eval(assign func(Var) float64) float64 {
	total := e.konst
	for v, c := range e.coef {
		if c == 0 {
			continue
		}
		total += c * assign(v)
	}
	return total
}

// String renders the expression in Equation 2 style.
func (e *Expr) String() string {
	vars := e.Vars()
	if len(vars) == 0 && e.konst == 0 {
		return "0"
	}
	var b strings.Builder
	if e.konst != 0 {
		fmt.Fprintf(&b, "%.4g", e.konst)
	}
	for _, v := range vars {
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		c := e.coef[v]
		if c == 1 {
			b.WriteString(v.String())
		} else {
			fmt.Fprintf(&b, "%.4g*%s", c, v)
		}
	}
	return b.String()
}
