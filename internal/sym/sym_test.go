package sym

import (
	"math"
	"testing"
	"testing/quick"

	"fastflip/internal/qcheck"
)

func TestZeroAndVar(t *testing.T) {
	z := Zero()
	if z.String() != "0" || z.Const() != 0 || len(z.Vars()) != 0 {
		t.Errorf("zero expr: %q const %v vars %v", z.String(), z.Const(), z.Vars())
	}
	v := NewVar(Var{Inst: 2, Out: 1})
	if v.Coef(Var{Inst: 2, Out: 1}) != 1 {
		t.Error("NewVar coefficient != 1")
	}
	if got := v.String(); got != "phi[2.1]" {
		t.Errorf("String = %q", got)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewVar(Var{Inst: 0, Out: 0})
	b := NewVar(Var{Inst: 1, Out: 0})
	e := Zero()
	e.AddScaled(2, a)
	e.AddScaled(3, b)
	e.AddScaled(0.5, a)
	if got := e.Coef(Var{Inst: 0, Out: 0}); got != 2.5 {
		t.Errorf("coef a = %v", got)
	}
	if got := e.Coef(Var{Inst: 1, Out: 0}); got != 3 {
		t.Errorf("coef b = %v", got)
	}
}

func TestAddScaledZeroAndNil(t *testing.T) {
	e := NewVar(Var{Inst: 0, Out: 0})
	e.AddScaled(0, NewVar(Var{Inst: 9, Out: 9}))
	e.AddScaled(1, nil)
	if len(e.Vars()) != 1 {
		t.Errorf("vars = %v", e.Vars())
	}
}

func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative scale did not panic")
		}
	}()
	Zero().AddScaled(-1, NewVar(Var{}))
}

func TestEvalSingleErrorModel(t *testing.T) {
	// e = 4x + 2y; under the single-error model only one φ is nonzero.
	e := Zero()
	e.AddVar(Var{Inst: 0, Out: 0}, 4)
	e.AddVar(Var{Inst: 1, Out: 0}, 2)
	got := e.Eval(func(v Var) float64 {
		if v.Inst == 0 {
			return 1.5
		}
		return 0
	})
	if got != 6 {
		t.Errorf("eval = %v, want 6", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := NewVar(Var{Inst: 0, Out: 0})
	c := e.Clone()
	c.AddVar(Var{Inst: 0, Out: 0}, 1)
	if e.Coef(Var{Inst: 0, Out: 0}) != 1 {
		t.Error("Clone shares coefficient map")
	}
}

func TestVarsSorted(t *testing.T) {
	e := Zero()
	e.AddVar(Var{Inst: 2, Out: 0}, 1)
	e.AddVar(Var{Inst: 0, Out: 1}, 1)
	e.AddVar(Var{Inst: 0, Out: 0}, 1)
	vars := e.Vars()
	want := []Var{{0, 0}, {0, 1}, {2, 0}}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("vars = %v, want %v", vars, want)
		}
	}
}

func TestString(t *testing.T) {
	e := Zero()
	e.AddVar(Var{Inst: 0, Out: 0}, 4174.8)
	e.AddVar(Var{Inst: 1, Out: 0}, 1)
	if got := e.String(); got != "4175*phi[0.0] + phi[1.0]" {
		t.Errorf("String = %q", got)
	}
}

// Property: AddScaled is linear — evaluating a sum of scaled expressions
// equals the sum of their scaled evaluations.
func TestAddScaledLinearQuick(t *testing.T) {
	f := func(c1, c2 uint8, phi1, phi2 float64) bool {
		k1 := float64(c1)/16 + 0.25
		k2 := float64(c2)/16 + 0.25
		p1, p2 := math.Abs(phi1), math.Abs(phi2)
		if math.IsInf(p1, 0) || math.IsInf(p2, 0) || math.IsNaN(p1) || math.IsNaN(p2) {
			return true
		}
		a := NewVar(Var{Inst: 0, Out: 0})
		b := NewVar(Var{Inst: 1, Out: 0})
		e := Zero()
		e.AddScaled(k1, a)
		e.AddScaled(k2, b)
		assign := func(v Var) float64 {
			if v.Inst == 0 {
				return p1
			}
			return p2
		}
		got := e.Eval(assign)
		want := k1*p1 + k2*p2
		return got == want
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: coefficients never decrease under AddScaled with non-negative
// inputs — the soundness invariant of the conservative bound.
func TestMonotoneCoefficientsQuick(t *testing.T) {
	f := func(adds []uint8) bool {
		e := Zero()
		prev := 0.0
		v := Var{Inst: 0, Out: 0}
		for _, a := range adds {
			e.AddVar(v, float64(a))
			if e.Coef(v) < prev {
				return false
			}
			prev = e.Coef(v)
		}
		return true
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}
