// Package prog builds and links programs for the fastflip ISA.
//
// A program is a set of named functions. Inside a function, branch targets
// are function-local instruction indices and calls name their callee, so a
// function body is position independent: its content hash (see Function.Hash)
// does not change when unrelated functions around it grow or shrink. This is
// what lets the incremental analysis recognize unmodified program sections
// across program versions, where absolute PCs have shifted.
//
// Link flattens the functions into a single instruction slice, rewriting
// branch targets and call targets to absolute PCs, and retains a PC → (function,
// local index) mapping so analyses can attribute dynamic instructions to
// stable static identities.
package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"fastflip/internal/isa"
)

// Function is a named, position-independent sequence of instructions.
// Branch/jump immediates are local instruction indices; CALL immediates are
// indices into Calls.
type Function struct {
	Name   string
	Instrs []isa.Instr
	Calls  []string // callee names; CALL Imm indexes this slice
}

// Hash returns a position-independent digest of the function body. Two
// functions with the same hash behave identically given identical inputs
// and callees; callees are identified by name, so a section's identity is
// the set of hashes of the functions it executes (see trace.SectionInstance).
func (f *Function) Hash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(f.Name))
	h.Write([]byte{0})
	for _, in := range f.Instrs {
		h.Write([]byte{byte(in.Op), in.Rd, in.Ra, in.Rb})
		writeU64(uint64(in.Imm))
	}
	h.Write([]byte{0})
	for _, callee := range f.Calls {
		h.Write([]byte(callee))
		h.Write([]byte{0})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Program is a collection of functions prior to linking.
type Program struct {
	funcs  []*Function
	byName map[string]int
}

// New returns an empty program.
func New() *Program {
	return &Program{byName: make(map[string]int)}
}

// Add registers fn with the program. It returns an error if a function with
// the same name is already present.
func (p *Program) Add(fn *Function) error {
	if fn.Name == "" {
		return fmt.Errorf("prog: function with empty name")
	}
	if _, dup := p.byName[fn.Name]; dup {
		return fmt.Errorf("prog: duplicate function %q", fn.Name)
	}
	p.byName[fn.Name] = len(p.funcs)
	p.funcs = append(p.funcs, fn)
	return nil
}

// MustAdd is Add but panics on error; for use in benchmark construction
// where a duplicate name is a programming bug.
func (p *Program) MustAdd(fn *Function) {
	if err := p.Add(fn); err != nil {
		panic(err)
	}
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function {
	i, ok := p.byName[name]
	if !ok {
		return nil
	}
	return p.funcs[i]
}

// Funcs returns the functions in registration order. The returned slice is
// shared; callers must not modify it.
func (p *Program) Funcs() []*Function { return p.funcs }

// Replace swaps in a new implementation for an existing function name.
// It is how benchmark variants (the paper's Small/Large modifications)
// are constructed from a base program.
func (p *Program) Replace(fn *Function) error {
	i, ok := p.byName[fn.Name]
	if !ok {
		return fmt.Errorf("prog: Replace of unknown function %q", fn.Name)
	}
	p.funcs[i] = fn
	return nil
}

// Linked is a flattened, executable program.
type Linked struct {
	Code []isa.Instr // absolute branch/call targets
	// FuncStarts[i] is the entry PC of function i; functions are laid out
	// contiguously in registration order with Entry first.
	FuncStarts []int
	FuncNames  []string
	FuncHashes [][32]byte
	Entry      int // PC of the entry function

	sorted []startEntry // FuncStarts in ascending PC order, built lazily
}

// Link lays the functions out contiguously (entry function first) and
// rewrites branch-local and call-by-name immediates into absolute PCs.
func (p *Program) Link(entry string) (*Linked, error) {
	ei, ok := p.byName[entry]
	if !ok {
		return nil, fmt.Errorf("prog: entry function %q not defined", entry)
	}
	order := make([]int, 0, len(p.funcs))
	order = append(order, ei)
	for i := range p.funcs {
		if i != ei {
			order = append(order, i)
		}
	}

	l := &Linked{
		FuncStarts: make([]int, len(order)),
		FuncNames:  make([]string, len(order)),
		FuncHashes: make([][32]byte, len(order)),
	}
	startByName := make(map[string]int, len(order))
	pc := 0
	for oi, fi := range order {
		fn := p.funcs[fi]
		l.FuncStarts[oi] = pc
		l.FuncNames[oi] = fn.Name
		l.FuncHashes[oi] = fn.Hash()
		startByName[fn.Name] = pc
		pc += len(fn.Instrs)
	}
	l.Entry = l.FuncStarts[0]

	l.Code = make([]isa.Instr, 0, pc)
	for _, fi := range order {
		fn := p.funcs[fi]
		base := startByName[fn.Name]
		for li, in := range fn.Instrs {
			switch isa.Info(in.Op).Imm {
			case isa.ImmTarget:
				if in.Imm < 0 || in.Imm >= int64(len(fn.Instrs)) {
					return nil, fmt.Errorf("prog: %s+%d: branch target %d out of range", fn.Name, li, in.Imm)
				}
				in.Imm += int64(base)
			case isa.ImmCallee:
				if in.Imm < 0 || in.Imm >= int64(len(fn.Calls)) {
					return nil, fmt.Errorf("prog: %s+%d: call index %d out of range", fn.Name, li, in.Imm)
				}
				callee := fn.Calls[in.Imm]
				target, ok := startByName[callee]
				if !ok {
					return nil, fmt.Errorf("prog: %s+%d: call to undefined function %q", fn.Name, li, callee)
				}
				in.Imm = int64(target)
			}
			l.Code = append(l.Code, in)
		}
	}
	return l, nil
}

// FuncOf maps an absolute PC to the index of its function and the
// function-local instruction index. It panics if pc is outside the program,
// since every traced PC comes from an executed instruction.
func (l *Linked) FuncOf(pc int) (fn int, local int) {
	if pc < 0 || pc >= len(l.Code) {
		panic(fmt.Sprintf("prog: FuncOf(%d) outside program of %d instructions", pc, len(l.Code)))
	}
	starts := l.sortedStarts()
	i := sort.Search(len(starts), func(i int) bool { return starts[i].start > pc }) - 1
	s := starts[i]
	return s.fn, pc - s.start
}

type startEntry struct {
	start int
	fn    int
}

// sorted caches FuncStarts in ascending PC order for FuncOf.
func (l *Linked) sortedStarts() []startEntry {
	if l.sorted == nil {
		l.sorted = make([]startEntry, len(l.FuncStarts))
		for i, s := range l.FuncStarts {
			l.sorted[i] = startEntry{start: s, fn: i}
		}
		sort.Slice(l.sorted, func(a, b int) bool { return l.sorted[a].start < l.sorted[b].start })
	}
	return l.sorted
}

// StaticID identifies a static instruction stably across program versions:
// the name of its function plus the function-local instruction index.
// Absolute PCs shift when any earlier function changes length; StaticIDs do
// not, so injection outcomes recorded against them can be reused.
type StaticID struct {
	Func  string
	Local int
}

func (s StaticID) String() string { return fmt.Sprintf("%s+%d", s.Func, s.Local) }

// StaticIDOf returns the stable static identity of the instruction at pc.
func (l *Linked) StaticIDOf(pc int) StaticID {
	fn, local := l.FuncOf(pc)
	return StaticID{Func: l.FuncNames[fn], Local: local}
}

// HashOfFunc returns the body hash of the named function, or false if the
// function is not part of the linked program.
func (l *Linked) HashOfFunc(name string) ([32]byte, bool) {
	for i, n := range l.FuncNames {
		if n == name {
			return l.FuncHashes[i], true
		}
	}
	return [32]byte{}, false
}
