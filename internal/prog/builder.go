package prog

import (
	"fmt"
	"math"

	"fastflip/internal/isa"
)

// B incrementally builds one Function. Branches take label names that may be
// defined before or after their use; Build resolves them. Errors (bad
// register numbers, unresolved labels, duplicate labels) are accumulated and
// reported by Build, so construction code stays linear.
type B struct {
	fn      *Function
	labels  map[string]int
	fixups  []fixup
	callIdx map[string]int
	errs    []error
}

type fixup struct {
	instr int
	label string
}

// NewFunc starts building a function with the given name.
func NewFunc(name string) *B {
	return &B{
		fn:      &Function{Name: name},
		labels:  make(map[string]int),
		callIdx: make(map[string]int),
	}
}

// Label defines a branch target at the current position.
func (b *B) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("%s: duplicate label %q", b.fn.Name, name))
		return
	}
	b.labels[name] = len(b.fn.Instrs)
}

// Len returns the number of instructions emitted so far.
func (b *B) Len() int { return len(b.fn.Instrs) }

// Build resolves labels and returns the finished function.
func (b *B) Build() (*Function, error) {
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("%s: undefined label %q", b.fn.Name, fx.label))
			continue
		}
		b.fn.Instrs[fx.instr].Imm = int64(target)
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("prog: building %s: %v", b.fn.Name, b.errs[0])
	}
	return b.fn, nil
}

// MustBuild is Build but panics on error; benchmark bodies are static, so a
// build error is a programming bug.
func (b *B) MustBuild() *Function {
	fn, err := b.Build()
	if err != nil {
		panic(err)
	}
	return fn
}

func (b *B) reg(n int) uint8 {
	if n < 0 || n >= isa.NumRegs {
		b.errs = append(b.errs, fmt.Errorf("%s: register %d out of range", b.fn.Name, n))
		return 0
	}
	return uint8(n)
}

func (b *B) emit(in isa.Instr) {
	b.fn.Instrs = append(b.fn.Instrs, in)
}

func (b *B) emitBranch(op isa.Op, ra, rb int, label string) {
	b.fixups = append(b.fixups, fixup{instr: len(b.fn.Instrs), label: label})
	b.emit(isa.Instr{Op: op, Ra: b.reg(ra), Rb: b.reg(rb)})
}

func (b *B) rrr(op isa.Op, rd, ra, rb int) {
	b.emit(isa.Instr{Op: op, Rd: b.reg(rd), Ra: b.reg(ra), Rb: b.reg(rb)})
}

func (b *B) rri(op isa.Op, rd, ra int, imm int64) {
	b.emit(isa.Instr{Op: op, Rd: b.reg(rd), Ra: b.reg(ra), Imm: imm})
}

func (b *B) rr(op isa.Op, rd, ra int) {
	b.emit(isa.Instr{Op: op, Rd: b.reg(rd), Ra: b.reg(ra)})
}

// Integer ALU.

func (b *B) Add(rd, ra, rb int)  { b.rrr(isa.ADD, rd, ra, rb) }
func (b *B) Sub(rd, ra, rb int)  { b.rrr(isa.SUB, rd, ra, rb) }
func (b *B) Mul(rd, ra, rb int)  { b.rrr(isa.MUL, rd, ra, rb) }
func (b *B) Div(rd, ra, rb int)  { b.rrr(isa.DIV, rd, ra, rb) }
func (b *B) Rem(rd, ra, rb int)  { b.rrr(isa.REM, rd, ra, rb) }
func (b *B) And(rd, ra, rb int)  { b.rrr(isa.AND, rd, ra, rb) }
func (b *B) Or(rd, ra, rb int)   { b.rrr(isa.OR, rd, ra, rb) }
func (b *B) Xor(rd, ra, rb int)  { b.rrr(isa.XOR, rd, ra, rb) }
func (b *B) Shl(rd, ra, rb int)  { b.rrr(isa.SHL, rd, ra, rb) }
func (b *B) Shr(rd, ra, rb int)  { b.rrr(isa.SHR, rd, ra, rb) }
func (b *B) Sra(rd, ra, rb int)  { b.rrr(isa.SRA, rd, ra, rb) }
func (b *B) Slt(rd, ra, rb int)  { b.rrr(isa.SLT, rd, ra, rb) }
func (b *B) Sltu(rd, ra, rb int) { b.rrr(isa.SLTU, rd, ra, rb) }

func (b *B) Addi(rd, ra int, imm int64) { b.rri(isa.ADDI, rd, ra, imm) }
func (b *B) Muli(rd, ra int, imm int64) { b.rri(isa.MULI, rd, ra, imm) }
func (b *B) Andi(rd, ra int, imm int64) { b.rri(isa.ANDI, rd, ra, imm) }
func (b *B) Ori(rd, ra int, imm int64)  { b.rri(isa.ORI, rd, ra, imm) }
func (b *B) Xori(rd, ra int, imm int64) { b.rri(isa.XORI, rd, ra, imm) }
func (b *B) Shli(rd, ra int, imm int64) { b.rri(isa.SHLI, rd, ra, imm) }
func (b *B) Shri(rd, ra int, imm int64) { b.rri(isa.SHRI, rd, ra, imm) }
func (b *B) Srai(rd, ra int, imm int64) { b.rri(isa.SRAI, rd, ra, imm) }

func (b *B) Mov(rd, ra int)     { b.rr(isa.MOV, rd, ra) }
func (b *B) Not(rd, ra int)     { b.rr(isa.NOT, rd, ra) }
func (b *B) Neg(rd, ra int)     { b.rr(isa.NEG, rd, ra) }
func (b *B) Li(rd int, v int64) { b.emit(isa.Instr{Op: isa.LI, Rd: b.reg(rd), Imm: v}) }

func (b *B) Add32(rd, ra, rb int)         { b.rrr(isa.ADD32, rd, ra, rb) }
func (b *B) Rotr32(rd, ra int, imm int64) { b.rri(isa.ROTR32, rd, ra, imm) }
func (b *B) Not32(rd, ra int)             { b.rr(isa.NOT32, rd, ra) }

// Floating point.

func (b *B) Fadd(fd, fa, fb int) { b.rrr(isa.FADD, fd, fa, fb) }
func (b *B) Fsub(fd, fa, fb int) { b.rrr(isa.FSUB, fd, fa, fb) }
func (b *B) Fmul(fd, fa, fb int) { b.rrr(isa.FMUL, fd, fa, fb) }
func (b *B) Fdiv(fd, fa, fb int) { b.rrr(isa.FDIV, fd, fa, fb) }
func (b *B) Fmin(fd, fa, fb int) { b.rrr(isa.FMIN, fd, fa, fb) }
func (b *B) Fmax(fd, fa, fb int) { b.rrr(isa.FMAX, fd, fa, fb) }

func (b *B) Fsqrt(fd, fa int) { b.rr(isa.FSQRT, fd, fa) }
func (b *B) Fneg(fd, fa int)  { b.rr(isa.FNEG, fd, fa) }
func (b *B) Fabs(fd, fa int)  { b.rr(isa.FABS, fd, fa) }
func (b *B) Fexp(fd, fa int)  { b.rr(isa.FEXP, fd, fa) }
func (b *B) Fln(fd, fa int)   { b.rr(isa.FLN, fd, fa) }
func (b *B) Fmov(fd, fa int)  { b.rr(isa.FMOV, fd, fa) }

func (b *B) Fli(fd int, v float64) {
	b.emit(isa.Instr{Op: isa.FLI, Rd: b.reg(fd), Imm: int64(math.Float64bits(v))})
}

func (b *B) Itof(fd, ra int)  { b.rr(isa.ITOF, fd, ra) }
func (b *B) Ftoi(rd, fa int)  { b.rr(isa.FTOI, rd, fa) }
func (b *B) Fbits(rd, fa int) { b.rr(isa.FBITS, rd, fa) }
func (b *B) Bitsf(fd, ra int) { b.rr(isa.BITSF, fd, ra) }

// Memory. Addresses are base register + word offset.

func (b *B) Ld(rd, ra int, off int64) { b.rri(isa.LD, rd, ra, off) }
func (b *B) St(ra, rb int, off int64) {
	b.emit(isa.Instr{Op: isa.ST, Ra: b.reg(ra), Rb: b.reg(rb), Imm: off})
}
func (b *B) Fld(fd, ra int, off int64) { b.rri(isa.FLD, fd, ra, off) }
func (b *B) Fst(fa, rb int, off int64) {
	b.emit(isa.Instr{Op: isa.FST, Ra: b.reg(fa), Rb: b.reg(rb), Imm: off})
}

// Control flow.

func (b *B) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{instr: len(b.fn.Instrs), label: label})
	b.emit(isa.Instr{Op: isa.JMP})
}
func (b *B) Beq(ra, rb int, label string)  { b.emitBranch(isa.BEQ, ra, rb, label) }
func (b *B) Bne(ra, rb int, label string)  { b.emitBranch(isa.BNE, ra, rb, label) }
func (b *B) Blt(ra, rb int, label string)  { b.emitBranch(isa.BLT, ra, rb, label) }
func (b *B) Ble(ra, rb int, label string)  { b.emitBranch(isa.BLE, ra, rb, label) }
func (b *B) Bgt(ra, rb int, label string)  { b.emitBranch(isa.BGT, ra, rb, label) }
func (b *B) Bge(ra, rb int, label string)  { b.emitBranch(isa.BGE, ra, rb, label) }
func (b *B) Fbeq(fa, fb int, label string) { b.emitBranch(isa.FBEQ, fa, fb, label) }
func (b *B) Fbne(fa, fb int, label string) { b.emitBranch(isa.FBNE, fa, fb, label) }
func (b *B) Fblt(fa, fb int, label string) { b.emitBranch(isa.FBLT, fa, fb, label) }
func (b *B) Fble(fa, fb int, label string) { b.emitBranch(isa.FBLE, fa, fb, label) }

// Call emits a call to the named function; the name is resolved at link time.
func (b *B) Call(name string) {
	idx, ok := b.callIdx[name]
	if !ok {
		idx = len(b.fn.Calls)
		b.callIdx[name] = idx
		b.fn.Calls = append(b.fn.Calls, name)
	}
	b.emit(isa.Instr{Op: isa.CALL, Imm: int64(idx)})
}

func (b *B) Ret()  { b.emit(isa.Instr{Op: isa.RET}) }
func (b *B) Halt() { b.emit(isa.Instr{Op: isa.HALT}) }
func (b *B) Nop()  { b.emit(isa.Instr{Op: isa.NOP}) }

// Analysis markers.

func (b *B) SecBeg(id int) { b.emit(isa.Instr{Op: isa.SECBEG, Imm: int64(id)}) }
func (b *B) SecEnd(id int) { b.emit(isa.Instr{Op: isa.SECEND, Imm: int64(id)}) }
func (b *B) RoiBeg()       { b.emit(isa.Instr{Op: isa.ROIBEG}) }
func (b *B) RoiEnd()       { b.emit(isa.Instr{Op: isa.ROIEND}) }
