package prog

import (
	"testing"

	"fastflip/internal/isa"
	"fastflip/internal/vm"
)

// twoFuncs builds a module with main calling a helper.
func twoFuncs(t *testing.T) *Program {
	t.Helper()
	p := New()

	main := NewFunc("main")
	main.Li(1, 5)
	main.Call("double")
	main.Halt()
	p.MustAdd(main.MustBuild())

	helper := NewFunc("double")
	helper.Add(1, 1, 1)
	helper.Ret()
	p.MustAdd(helper.MustBuild())
	return p
}

func TestLinkAndRun(t *testing.T) {
	l, err := twoFuncs(t).Link("main")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(l.Code, l.Entry, 4)
	if ev := m.Run(); ev.Kind != vm.EvHalt {
		t.Fatalf("run ended with %v", ev.Kind)
	}
	if m.R[1] != 10 {
		t.Errorf("r1 = %d, want 10", m.R[1])
	}
}

func TestLinkEntryFirst(t *testing.T) {
	p := New()
	a := NewFunc("a")
	a.Halt()
	p.MustAdd(a.MustBuild())
	b := NewFunc("b")
	b.Halt()
	p.MustAdd(b.MustBuild())

	l, err := p.Link("b")
	if err != nil {
		t.Fatal(err)
	}
	if l.Entry != 0 || l.FuncNames[0] != "b" {
		t.Errorf("entry = %d, first func = %s", l.Entry, l.FuncNames[0])
	}
}

func TestLinkErrors(t *testing.T) {
	t.Run("missing entry", func(t *testing.T) {
		if _, err := New().Link("main"); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		p := New()
		f := NewFunc("main")
		f.Call("ghost")
		f.Halt()
		p.MustAdd(f.MustBuild())
		if _, err := p.Link("main"); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("duplicate function", func(t *testing.T) {
		p := New()
		f := NewFunc("main")
		f.Halt()
		p.MustAdd(f.MustBuild())
		g := NewFunc("main")
		g.Halt()
		if err := p.Add(g.MustBuild()); err == nil {
			t.Error("expected error")
		}
	})
}

func TestBuilderLabels(t *testing.T) {
	f := NewFunc("loop")
	f.Li(1, 0)
	f.Label("top")
	f.Addi(1, 1, 1)
	f.Li(2, 3)
	f.Blt(1, 2, "top")
	f.Halt()
	fn, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The branch target must be the local index of "top".
	br := fn.Instrs[len(fn.Instrs)-2]
	if br.Op != isa.BLT || br.Imm != 1 {
		t.Fatalf("branch = %v", br)
	}

	p := New()
	p.MustAdd(fn)
	l, err := p.Link("loop")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(l.Code, l.Entry, 4)
	m.Run()
	if m.R[1] != 3 {
		t.Errorf("loop ran to %d, want 3", m.R[1])
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		f := NewFunc("f")
		f.Jmp("nowhere")
		if _, err := f.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		f := NewFunc("f")
		f.Label("x")
		f.Label("x")
		f.Halt()
		if _, err := f.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("register out of range", func(t *testing.T) {
		f := NewFunc("f")
		f.Add(16, 0, 0)
		if _, err := f.Build(); err == nil {
			t.Error("expected error")
		}
	})
}

func TestFuncOfAndStaticID(t *testing.T) {
	l, err := twoFuncs(t).Link("main")
	if err != nil {
		t.Fatal(err)
	}
	for pc := range l.Code {
		fi, local := l.FuncOf(pc)
		if got := l.FuncStarts[fi] + local; got != pc {
			t.Errorf("FuncOf(%d) -> start %d + local %d", pc, l.FuncStarts[fi], local)
		}
	}
	id := l.StaticIDOf(l.FuncStarts[1])
	if id.Func != l.FuncNames[1] || id.Local != 0 {
		t.Errorf("StaticIDOf = %v", id)
	}
}

// TestStaticIDStableAcrossVersions is the property incremental reuse rests
// on: when an unrelated function grows, other functions' static IDs and
// hashes stay fixed even though absolute PCs shift.
func TestStaticIDStableAcrossVersions(t *testing.T) {
	build := func(extra int) *Linked {
		p := New()
		main := NewFunc("main")
		for i := 0; i < extra; i++ {
			main.Nop()
		}
		main.Call("double")
		main.Halt()
		p.MustAdd(main.MustBuild())
		helper := NewFunc("double")
		helper.Add(1, 1, 1)
		helper.Ret()
		p.MustAdd(helper.MustBuild())
		l, err := p.Link("main")
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	v1, v2 := build(0), build(5)
	h1, _ := v1.HashOfFunc("double")
	h2, _ := v2.HashOfFunc("double")
	if h1 != h2 {
		t.Error("helper hash changed when main grew")
	}
	id1 := v1.StaticIDOf(v1.FuncStarts[1])
	id2 := v2.StaticIDOf(v2.FuncStarts[1])
	if id1 != id2 {
		t.Errorf("static IDs differ: %v vs %v", id1, id2)
	}
}

func TestHashSensitivity(t *testing.T) {
	base := func() *B {
		f := NewFunc("f")
		f.Li(1, 7)
		f.Label("l")
		f.Blt(1, 2, "l")
		f.Call("callee")
		f.Ret()
		return f
	}
	h0 := base().MustBuild().Hash()

	t.Run("identical builds hash equal", func(t *testing.T) {
		if base().MustBuild().Hash() != h0 {
			t.Error("hash not deterministic")
		}
	})
	t.Run("immediate change", func(t *testing.T) {
		f := NewFunc("f")
		f.Li(1, 8)
		f.Label("l")
		f.Blt(1, 2, "l")
		f.Call("callee")
		f.Ret()
		if f.MustBuild().Hash() == h0 {
			t.Error("hash ignored immediate")
		}
	})
	t.Run("callee rename", func(t *testing.T) {
		f := NewFunc("f")
		f.Li(1, 7)
		f.Label("l")
		f.Blt(1, 2, "l")
		f.Call("other")
		f.Ret()
		if f.MustBuild().Hash() == h0 {
			t.Error("hash ignored callee name")
		}
	})
	t.Run("function rename", func(t *testing.T) {
		f := NewFunc("g")
		f.Li(1, 7)
		f.Label("l")
		f.Blt(1, 2, "l")
		f.Call("callee")
		f.Ret()
		if f.MustBuild().Hash() == h0 {
			t.Error("hash ignored function name")
		}
	})
}

func TestReplaceSwapsBody(t *testing.T) {
	p := twoFuncs(t)
	faster := NewFunc("double")
	faster.Shli(1, 1, 1)
	faster.Ret()
	if err := p.Replace(faster.MustBuild()); err != nil {
		t.Fatal(err)
	}
	l, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(l.Code, l.Entry, 4)
	m.Run()
	if m.R[1] != 10 {
		t.Errorf("replaced double: r1 = %d, want 10", m.R[1])
	}
	if err := p.Replace(NewFunc("ghost").MustBuild()); err == nil {
		t.Error("Replace of unknown function succeeded")
	}
}

func TestBranchTargetOutOfRange(t *testing.T) {
	p := New()
	fn := &Function{Name: "bad", Instrs: []isa.Instr{{Op: isa.JMP, Imm: 99}}}
	p.MustAdd(fn)
	if _, err := p.Link("bad"); err == nil {
		t.Error("expected link error for out-of-range branch")
	}
}
