// Package maskelide is Tier A of the experiment-elision stack: a
// backward bit-level liveness analysis over linked programs that proves
// whole bit-ranges of an instruction's register operands dead — flipping
// them cannot change any future memory write, any control-flow decision,
// or any crash/timeout behavior, so the experiment's outcome is the
// clean run's outcome (Masked) without executing it.
//
// The lattice is a bitmask per (register file, register): bit b set means
// "bit b of this register may be observed later". Observation points are
// exactly what the outcome comparator reads: memory words (so a store's
// value operand is fully live), addresses (a flipped base register can
// crash out of bounds, so base operands are fully live), branch and
// division operands (control flow and crash determinism), and nothing
// else — registers themselves are never compared at section or program
// end, so liveness at HALT is empty.
//
// Transfer functions exploit the ISA's bit structure: a carry chain only
// propagates upward (ADD/SUB/MUL need source bits no higher than the
// highest live destination bit), logical ops are bit-parallel, immediate
// AND/OR absorb (ANDI only needs source bits its mask keeps, ORI only
// bits its mask does not force), shifts translate the live mask, and the
// 32-bit ops (ADD32/ROTR32/NOT32) never observe the upper source half.
// Float arithmetic is treated conservatively (any live destination bit
// makes sources fully live) because rounding mixes all input bits; only
// the exact bit movers FMOV/FBITS/BITSF transfer masks precisely.
//
// The analysis is interprocedural over the linked supergraph: a CALL
// flows into the callee's entry and a RET into every return point of the
// function's callers (context-insensitive, hence an over-approximation
// of liveness — sound for elision, which only acts on dead bits).
package maskelide

import (
	"math/bits"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
)

// regState is one program point's liveness: a 64-bit mask per register,
// per file (index 0 integer, 1 float).
type regState [2][16]uint64

const (
	fileInt   = 0
	fileFloat = 1
)

// allLive is the top mask: every bit of a register observable.
const allLive = ^uint64(0)

func fileOf(class isa.RegClass) int {
	if class == isa.RegFloat {
		return fileFloat
	}
	return fileInt
}

// Masks holds the fixpoint result for one linked program.
type Masks struct {
	liveIn  []regState // before the instruction (source flips)
	liveOut []regState // after the instruction (destination flips)
}

// Analyze runs the backward bit-liveness fixpoint over l and returns the
// per-pc masks. Cost is linear in code size times the (small) number of
// worklist revisits; results are immutable and safe to share across
// goroutines.
func Analyze(l *prog.Linked) *Masks {
	n := len(l.Code)
	m := &Masks{
		liveIn:  make([]regState, n),
		liveOut: make([]regState, n),
	}
	if n == 0 {
		return m
	}

	succs, retOpen := successors(l)
	preds := make([][]int32, n)
	for pc, ss := range succs {
		for _, s := range ss {
			preds[s] = append(preds[s], int32(pc))
		}
	}

	// Worklist over predecessors: start from every pc (masks only grow,
	// so order affects speed, not the result). Reverse order converges in
	// few sweeps on straight-line kernels.
	inList := make([]bool, n)
	work := make([]int32, 0, n)
	for pc := n - 1; pc >= 0; pc-- {
		work = append(work, int32(pc))
		inList[pc] = true
	}
	for len(work) > 0 {
		pc := int(work[len(work)-1])
		work = work[:len(work)-1]
		inList[pc] = false

		var out regState
		if retOpen[pc] {
			// RET of a function with no known call site: assume every
			// register observable at the unknown return point.
			for f := range out {
				for r := range out[f] {
					out[f][r] = allLive
				}
			}
		}
		for _, s := range succs[pc] {
			or(&out, &m.liveIn[s])
		}
		in := transfer(l.Code[pc], &out)
		if m.liveOut[pc] != out || m.liveIn[pc] != in {
			m.liveOut[pc] = out
			m.liveIn[pc] = in
			for _, p := range preds[pc] {
				if !inList[p] {
					inList[p] = true
					work = append(work, p)
				}
			}
		}
	}
	return m
}

// successors builds the supergraph successor lists. retOpen[pc] marks a
// RET whose function has no recorded call site (its continuation is
// unknown, so liveness there is top).
func successors(l *prog.Linked) (succs [][]int32, retOpen []bool) {
	n := len(l.Code)
	succs = make([][]int32, n)
	retOpen = make([]bool, n)

	// Map a pc to its function index via the contiguous layout.
	fnOf := make([]int, n)
	for i, start := range l.FuncStarts {
		end := n
		for _, other := range l.FuncStarts {
			if other > start && other < end {
				end = other
			}
		}
		for pc := start; pc < end; pc++ {
			fnOf[pc] = i
		}
	}
	entryFn := make(map[int]int, len(l.FuncStarts))
	for i, start := range l.FuncStarts {
		entryFn[start] = i
	}
	// Return points of each function: pc+1 of every CALL targeting it.
	retTo := make([][]int32, len(l.FuncStarts))
	for pc, in := range l.Code {
		if in.Op == isa.CALL && pc+1 < n {
			if fi, ok := entryFn[int(in.Imm)]; ok {
				retTo[fi] = append(retTo[fi], int32(pc+1))
			}
		}
	}

	for pc, in := range l.Code {
		switch in.Op {
		case isa.HALT, isa.TRAP:
			// No successors: nothing observes registers after halt, and a
			// trap crashes the machine before any compare happens.
		case isa.JMP:
			succs[pc] = []int32{int32(in.Imm)}
		case isa.CALL:
			succs[pc] = []int32{int32(in.Imm)}
		case isa.RET:
			fi := fnOf[pc]
			if len(retTo[fi]) == 0 {
				retOpen[pc] = true
			} else {
				succs[pc] = retTo[fi]
			}
		case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE,
			isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
			succs[pc] = []int32{int32(in.Imm)}
			if pc+1 < n {
				succs[pc] = append(succs[pc], int32(pc+1))
			}
		default:
			if pc+1 < n {
				succs[pc] = []int32{int32(pc + 1)}
			}
		}
	}
	return succs, retOpen
}

func or(dst, src *regState) {
	for f := range dst {
		for r := range dst[f] {
			dst[f][r] |= src[f][r]
		}
	}
}

// upTo widens a mask downward for carry-propagating ops: a source bit can
// only influence destination bits at its position or above, so every
// source bit up to the highest live destination bit is needed.
func upTo(m uint64) uint64 {
	if m == 0 {
		return 0
	}
	return (1 << bits.Len64(m)) - 1
}

// transfer computes liveIn = use(in, out) ∪ (out minus the destination's
// kill) for one instruction.
func transfer(in isa.Instr, out *regState) regState {
	st := *out
	info := isa.Info(in.Op)

	// The destination write defines all 64 bits: kill before use so an
	// instruction reading and writing the same register keeps its uses.
	var ld uint64
	if info.Dst != isa.RegNone {
		f := fileOf(info.Dst)
		ld = st[f][in.Rd]
		st[f][in.Rd] = 0
	}

	ua, ub := useMasks(in, ld)
	if info.SrcA != isa.RegNone {
		st[fileOf(info.SrcA)][in.Ra] |= ua
	}
	if info.SrcB != isa.RegNone {
		st[fileOf(info.SrcB)][in.Rb] |= ub
	}
	return st
}

// useMasks returns which bits of Ra/Rb the instruction can observe, given
// the live-out mask ld of its destination (0 for ops without one).
func useMasks(in isa.Instr, ld uint64) (ua, ub uint64) {
	condAll := func() uint64 {
		if ld != 0 {
			return allLive
		}
		return 0
	}
	switch in.Op {
	// Carry chains propagate strictly upward.
	case isa.ADD, isa.SUB, isa.MUL:
		u := upTo(ld)
		return u, u
	case isa.ADDI, isa.MULI, isa.NEG:
		return upTo(ld), 0

	// Division: a flipped divisor can become zero (or stop being zero),
	// which changes crash behavior — every divisor bit is live even when
	// the quotient is dead. The dividend only matters for the result.
	case isa.DIV, isa.REM:
		return condAll(), allLive

	// Bit-parallel logical ops.
	case isa.AND, isa.OR, isa.XOR:
		return ld, ld
	case isa.XORI, isa.MOV, isa.NOT:
		return ld, 0

	// Immediate absorption: ANDI drops source bits its mask clears, ORI
	// drops source bits its mask forces to one.
	case isa.ANDI:
		return ld & uint64(in.Imm), 0
	case isa.ORI:
		return ld &^ uint64(in.Imm), 0

	// Immediate shifts translate the live mask; SRAI additionally reads
	// the sign bit whenever a smeared position is live.
	case isa.SHLI:
		return ld >> (uint(in.Imm) & 63), 0
	case isa.SHRI:
		return ld << (uint(in.Imm) & 63), 0
	case isa.SRAI:
		s := uint(in.Imm) & 63
		u := ld << s
		if ld>>(64-s) != 0 {
			u |= 1 << 63
		}
		return u, 0

	// Register-amount shifts: only the low six amount bits are decoded;
	// the shifted source is unpredictable statically.
	case isa.SHL, isa.SHR, isa.SRA:
		if ld == 0 {
			return 0, 0
		}
		return allLive, 0x3f

	// Comparisons define bits 1..63 as constant zero.
	case isa.SLT, isa.SLTU:
		if ld&1 == 0 {
			return 0, 0
		}
		return allLive, allLive

	case isa.LI, isa.FLI:
		return 0, 0

	// 32-bit ops never observe the upper source half.
	case isa.ADD32:
		u := upTo(ld&0xffffffff) & 0xffffffff
		return u, u
	case isa.ROTR32:
		u := uint64(bits.RotateLeft32(uint32(ld), int(uint(in.Imm)&31)))
		return u, 0
	case isa.NOT32:
		return ld & 0xffffffff, 0

	// Exact bit movers between files.
	case isa.FMOV, isa.FBITS, isa.BITSF:
		return ld, 0

	// Float arithmetic and conversions: rounding mixes all input bits,
	// so any live result bit makes the sources fully live. (FNEG/FABS
	// could be exact, but staying conservative costs little: their
	// operands are usually consumed by arithmetic anyway.)
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMIN, isa.FMAX:
		u := condAll()
		return u, u
	case isa.FSQRT, isa.FNEG, isa.FABS, isa.FEXP, isa.FLN, isa.ITOF, isa.FTOI:
		return condAll(), 0

	// Memory: the base register is fully live regardless of the loaded
	// value (a flipped address can crash out of bounds); a store's value
	// lands in compared memory, so it is fully live too.
	case isa.LD, isa.FLD:
		return allLive, 0
	case isa.ST, isa.FST:
		return allLive, allLive
	// Absolute-address stores (hardening spills): no base register, but
	// the stored value lands in memory, so it is fully observable. The
	// absolute loads LDA/FLDA have no register sources at all and fall
	// through to the zero default.
	case isa.STA, isa.FSTA:
		return allLive, 0

	// Control flow observes its operands completely.
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE,
		isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
		return allLive, allLive
	}
	// NOP, HALT, JMP, CALL, RET, markers: no register operands.
	return 0, 0
}

// LiveIn returns the live mask of (class, reg) just before pc executes —
// the mask governing source-operand flips, which persist in the register
// file beyond the instruction itself.
func (m *Masks) LiveIn(pc int, class isa.RegClass, reg uint8) uint64 {
	return m.liveIn[pc][fileOf(class)][reg]
}

// LiveOut returns the live mask of (class, reg) just after pc executed —
// the mask governing destination-operand flips.
func (m *Masks) LiveOut(pc int, class isa.RegClass, reg uint8) uint64 {
	return m.liveOut[pc][fileOf(class)][reg]
}

// SiteElidable reports whether a Width-bit burst starting at Bit in the
// given operand of the instruction at pc is provably masked: every bit of
// the burst is dead at the flip's observation point, so the faulty run is
// architecturally indistinguishable from the clean run.
func (m *Masks) SiteElidable(pc int, op isa.Operand, bit, width uint8) bool {
	if m == nil || pc < 0 || pc >= len(m.liveIn) {
		return false
	}
	if width < 1 {
		width = 1
	}
	var burst uint64
	if width >= 64 {
		burst = allLive
	} else {
		burst = ((uint64(1) << width) - 1) << bit
	}
	var live uint64
	if op.Role == isa.OperandDst {
		live = m.LiveOut(pc, op.Class, op.Reg)
	} else {
		live = m.LiveIn(pc, op.Class, op.Reg)
	}
	return live&burst == 0
}

// DeadSites counts the elidable (operand, bit) single-bit sites at pc —
// a cheap static census used by tests and diagnostics.
func (m *Masks) DeadSites(code []isa.Instr, pc int) int {
	var ops []isa.Operand
	ops = code[pc].Operands(ops)
	n := 0
	for _, op := range ops {
		for bit := 0; bit < 64; bit++ {
			if m.SiteElidable(pc, op, uint8(bit), 1) {
				n++
			}
		}
	}
	return n
}
