package maskelide

import (
	"testing"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
	"fastflip/internal/vm"
)

func link(t testing.TB, fns ...*prog.Function) *prog.Linked {
	t.Helper()
	p := prog.New()
	for _, fn := range fns {
		p.MustAdd(fn)
	}
	l, err := p.Link(fns[0].Name)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return l
}

func pcOf(t testing.TB, l *prog.Linked, op isa.Op, nth int) int {
	t.Helper()
	seen := 0
	for pc, in := range l.Code {
		if in.Op == op {
			if seen == nth {
				return pc
			}
			seen++
		}
	}
	t.Fatalf("no %dth %v in code", nth, op)
	return -1
}

// TestTruncatingStore: v is masked to its low byte before the store, so
// bits 8..63 of the producer's destination are dead while 0..7 stay live.
func TestTruncatingStore(t *testing.T) {
	b := prog.NewFunc("main")
	b.Li(1, 0)
	b.Li(2, 0x12345)
	b.Andi(3, 2, 0xff) // only low byte survives
	b.St(3, 1, 4)
	b.Halt()
	l := link(t, b.MustBuild())
	m := Analyze(l)

	li := pcOf(t, l, isa.LI, 1) // the 0x12345 load into r2
	// Destination flips of r2 at the LI: only low 8 bits observable.
	if got := m.LiveOut(li, isa.RegInt, 2); got != 0xff {
		t.Fatalf("liveOut(r2 at LI) = %#x, want 0xff", got)
	}
	dst := isa.Operand{Role: isa.OperandDst, Class: isa.RegInt, Reg: 2}
	if !m.SiteElidable(li, dst, 8, 1) || !m.SiteElidable(li, dst, 63, 1) {
		t.Fatal("high dst bits of truncated value should be elidable")
	}
	if m.SiteElidable(li, dst, 7, 1) {
		t.Fatal("kept low bit must not be elidable")
	}
	// A burst straddling the boundary is not elidable.
	if m.SiteElidable(li, dst, 7, 2) {
		t.Fatal("burst covering a live bit must not be elidable")
	}
	if !m.SiteElidable(li, dst, 8, 4) {
		t.Fatal("all-dead burst should be elidable")
	}
	// The store's value operand is fully live.
	st := pcOf(t, l, isa.ST, 0)
	val := isa.Operand{Role: isa.OperandSrcA, Class: isa.RegInt, Reg: 3}
	if m.SiteElidable(st, val, 63, 1) {
		t.Fatal("store value bits are never elidable")
	}
	// The store's base register is fully live (address crash determinism).
	base := isa.Operand{Role: isa.OperandSrcB, Class: isa.RegInt, Reg: 1}
	if m.SiteElidable(st, base, 63, 1) {
		t.Fatal("store base bits are never elidable")
	}
}

// TestOrAbsorption: ORI with a mask forces those bits to one, so the
// source's forced bits are dead.
func TestOrAbsorption(t *testing.T) {
	b := prog.NewFunc("main")
	b.Li(1, 0)
	b.Li(2, 7)
	b.Ori(3, 2, 0xf0)
	b.St(3, 1, 0)
	b.Halt()
	l := link(t, b.MustBuild())
	m := Analyze(l)

	li := pcOf(t, l, isa.LI, 1)
	if got := m.LiveOut(li, isa.RegInt, 2); got != ^uint64(0xf0) {
		t.Fatalf("liveOut(r2) = %#x, want %#x", got, ^uint64(0xf0))
	}
}

// TestAdd32KillsUpperHalf: the 32-bit add never observes the upper source
// half, and defines the upper destination half as zero.
func TestAdd32KillsUpperHalf(t *testing.T) {
	b := prog.NewFunc("main")
	b.Li(1, 0)
	b.Li(2, 123)
	b.Li(3, 456)
	b.Add32(4, 2, 3)
	b.St(4, 1, 0)
	b.Halt()
	l := link(t, b.MustBuild())
	m := Analyze(l)

	add := pcOf(t, l, isa.ADD32, 0)
	src := isa.Operand{Role: isa.OperandSrcA, Class: isa.RegInt, Reg: 2}
	if !m.SiteElidable(add, src, 32, 32) {
		t.Fatal("upper source half of ADD32 should be elidable")
	}
	if m.SiteElidable(add, src, 31, 1) {
		t.Fatal("low source half of ADD32 must not be elidable")
	}
}

// TestDivisorAlwaysLive: even when the quotient is dead, a divisor flip
// can toggle the divide-by-zero crash, so it is never elidable.
func TestDivisorAlwaysLive(t *testing.T) {
	b := prog.NewFunc("main")
	b.Li(1, 10)
	b.Li(2, 3)
	b.Div(3, 1, 2) // r3 never stored: quotient dead
	b.Halt()
	l := link(t, b.MustBuild())
	m := Analyze(l)

	div := pcOf(t, l, isa.DIV, 0)
	divisor := isa.Operand{Role: isa.OperandSrcB, Class: isa.RegInt, Reg: 2}
	if m.SiteElidable(div, divisor, 0, 1) {
		t.Fatal("divisor bits must never be elidable")
	}
	// The dividend only feeds the dead quotient.
	dividend := isa.Operand{Role: isa.OperandSrcA, Class: isa.RegInt, Reg: 1}
	if !m.SiteElidable(div, dividend, 0, 1) {
		t.Fatal("dividend of a dead quotient should be elidable")
	}
	// And the dead destination is fully elidable.
	dst := isa.Operand{Role: isa.OperandDst, Class: isa.RegInt, Reg: 3}
	if !m.SiteElidable(div, dst, 0, 64) {
		t.Fatal("dead quotient destination should be elidable")
	}
}

// TestBranchOperandsLive: branch sources decide control flow and are
// always fully live.
func TestBranchOperandsLive(t *testing.T) {
	b := prog.NewFunc("main")
	b.Li(1, 0)
	b.Li(2, 5)
	b.Beq(1, 2, "done")
	b.Li(3, 1)
	b.Label("done")
	b.Halt()
	l := link(t, b.MustBuild())
	m := Analyze(l)

	beq := pcOf(t, l, isa.BEQ, 0)
	for _, op := range []isa.Operand{
		{Role: isa.OperandSrcA, Class: isa.RegInt, Reg: 1},
		{Role: isa.OperandSrcB, Class: isa.RegInt, Reg: 2},
	} {
		if m.SiteElidable(beq, op, 0, 1) || m.SiteElidable(beq, op, 63, 1) {
			t.Fatalf("branch operand r%d should be fully live", op.Reg)
		}
	}
}

// TestInterproceduralDeadTail: a value computed in a callee and never
// observed by any caller is dead across the RET.
func TestInterproceduralDeadTail(t *testing.T) {
	main := prog.NewFunc("main")
	main.Li(1, 0)
	main.Call("leaf")
	main.Li(2, 9)
	main.St(2, 1, 0)
	main.Halt()

	leaf := prog.NewFunc("leaf")
	leaf.Li(5, 0xdead) // r5 never read after the call returns
	leaf.Ret()

	l := link(t, main.MustBuild(), leaf.MustBuild())
	m := Analyze(l)

	li := pcOf(t, l, isa.LI, 2) // the 0xdead load inside leaf
	if l.Code[li].Imm != 0xdead {
		t.Fatalf("wrong LI found: %+v", l.Code[li])
	}
	dst := isa.Operand{Role: isa.OperandDst, Class: isa.RegInt, Reg: 5}
	if !m.SiteElidable(li, dst, 0, 64) {
		t.Fatal("callee-local dead value should be elidable across RET")
	}
}

// TestShiftTranslation: SHRI moves the live window up; bits shifted out
// below it are dead.
func TestShiftTranslation(t *testing.T) {
	b := prog.NewFunc("main")
	b.Li(1, 0)
	b.Li(2, 0xabcd)
	b.Shri(3, 2, 8) // r3 = r2 >> 8
	b.Andi(3, 3, 1) // keep only bit 0 of the shifted value = bit 8 of r2
	b.St(3, 1, 0)
	b.Halt()
	l := link(t, b.MustBuild())
	m := Analyze(l)

	li := pcOf(t, l, isa.LI, 1)
	if got := m.LiveOut(li, isa.RegInt, 2); got != 1<<8 {
		t.Fatalf("liveOut(r2) = %#x, want %#x", got, uint64(1)<<8)
	}
}

// buildDiffProg is a small multi-feature program with provably-dead bits
// for the differential test: masked chains, 32-bit ops, a call, a loop.
func buildDiffProg() *prog.Linked {
	main := prog.NewFunc("main")
	main.Li(1, 0) // base pointer
	main.Li(2, 0) // i = 0
	main.Li(3, 5) // n = 5
	main.Label("loop")
	main.Li(4, 0x1234567)
	main.Add(4, 4, 2)       // mix i in
	main.Andi(5, 4, 0xffff) // truncate
	main.Ori(5, 5, 0x10000) // absorb
	main.Call("hash")
	main.St(6, 1, 8) // store hash result
	main.St(5, 1, 0)
	main.Addi(2, 2, 1)
	main.Blt(2, 3, "loop")
	main.Halt()

	hash := prog.NewFunc("hash")
	hash.Rotr32(6, 5, 7)
	hash.Not32(6, 6)
	hash.Add32(6, 6, 5)
	hash.Ret()

	p := prog.New()
	p.MustAdd(main.MustBuild())
	p.MustAdd(hash.MustBuild())
	l, err := p.Link("main")
	if err != nil {
		panic(err)
	}
	return l
}

// TestDifferentialDeadBits flips every bit the analysis proves dead, at
// its dynamic position, and requires the run to be architecturally
// indistinguishable from the clean run (same final memory, same event).
func TestDifferentialDeadBits(t *testing.T) {
	l := buildDiffProg()
	masks := Analyze(l)

	const memWords = 16
	clean := vm.New(l.Code, l.Entry, memWords)
	cleanEv := clean.Run()
	if cleanEv.Kind != vm.EvHalt {
		t.Fatalf("clean run ended with %v", cleanEv.Kind)
	}

	// Walk the clean execution once, recording (dyn, pc).
	type step struct {
		dyn uint64
		pc  int
	}
	var steps []step
	w := vm.New(l.Code, l.Entry, memWords)
	for {
		if w.PC < 0 || w.PC >= len(l.Code) {
			break
		}
		steps = append(steps, step{w.Dyn, w.PC})
		if ev := w.Step(); ev.Kind == vm.EvHalt || ev.Kind == vm.EvCrash || ev.Kind == vm.EvTimeout {
			break
		}
	}

	flips := 0
	var ops []isa.Operand
	for _, s := range steps {
		in := l.Code[s.pc]
		ops = in.Operands(ops[:0])
		for _, op := range ops {
			for bit := uint8(0); bit < 64; bit++ {
				if !masks.SiteElidable(s.pc, op, bit, 1) {
					continue
				}
				flips++
				m := vm.New(l.Code, l.Entry, memWords)
				if ev := m.RunUntilDyn(s.dyn); ev.Kind != vm.EvNone {
					t.Fatalf("replay to dyn %d: %v", s.dyn, ev.Kind)
				}
				if op.Role == isa.OperandDst {
					if ev := m.Step(); ev.Kind != vm.EvNone {
						t.Fatalf("step at dyn %d: %v", s.dyn, ev.Kind)
					}
				}
				if op.Class == isa.RegFloat {
					m.FlipFloat(int(op.Reg), uint(bit))
				} else {
					m.FlipInt(int(op.Reg), uint(bit))
				}
				ev := m.Run()
				if ev.Kind != cleanEv.Kind {
					t.Fatalf("dyn %d pc %d %v r%d bit %d: event %v != clean %v",
						s.dyn, s.pc, op.Role, op.Reg, bit, ev.Kind, cleanEv.Kind)
				}
				for a := range m.Mem {
					if m.Mem[a] != clean.Mem[a] {
						t.Fatalf("dyn %d pc %d %v r%d bit %d: mem[%d] %#x != clean %#x",
							s.dyn, s.pc, op.Role, op.Reg, bit, a, m.Mem[a], clean.Mem[a])
					}
				}
			}
		}
	}
	if flips == 0 {
		t.Fatal("differential test exercised zero elidable sites")
	}
	t.Logf("verified %d provably-dead single-bit flips", flips)
}

func BenchmarkMaskAnalysis(b *testing.B) {
	l := buildDiffProg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(l)
	}
}
