package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fastflip/internal/core"
	"fastflip/internal/ostore"
	"fastflip/internal/service"
	"fastflip/internal/spec"
)

// buildWithSlow serves "pipe" (both variants) plus the slow spin-loop
// fixture, for tests that need a job to still be running when they act.
func buildWithSlow(name, variant string) (*spec.Program, error) {
	if name == "slow" {
		return slowSpinProg(), nil
	}
	return testBuild(name, variant)
}

// TestSubmitStatusClasses pins the submit-failure taxonomy at the HTTP
// edge, one subtest per class: client mistakes are 400, infrastructure
// failures 500, tenant quota 429 (with a Retry-After hint). The 503
// queue-full class is covered by TestReadyzAndSubmitOnSaturatedQueue.
func TestSubmitStatusClasses(t *testing.T) {
	t.Run("400 invalid request", func(t *testing.T) {
		ts, _ := newTestServer(t, service.Options{})
		for _, body := range []string{
			`{"bench":"nope"}`,                  // unknown benchmark
			`{"bench":"pipe","variant":"huge"}`, // unknown variant
		} {
			resp := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("submit %s = %d, want 400", body, resp.StatusCode)
			}
		}
	})
	t.Run("500 infrastructure", func(t *testing.T) {
		// A WAL "directory" that is a plain file: the operator's problem,
		// and it must not masquerade as the client's.
		blocked := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		ts, _ := newTestServer(t, service.Options{WALDir: blocked})
		resp := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(`{"bench":"pipe","variant":"none"}`))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("submit with broken WAL dir = %d, want 500", resp.StatusCode)
		}
	})
	t.Run("429 tenant quota", func(t *testing.T) {
		ts, _ := newTestServer(t, service.Options{
			Build:           buildWithSlow,
			ListBenchmarks:  func() []string { return []string{"pipe", "slow"} },
			MaxTenantActive: 1,
		})
		var v service.JobView
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			service.Request{Bench: "slow", Tenant: "greedy"}, &v); code != http.StatusAccepted {
			t.Fatalf("first submit = %d", code)
		}
		resp := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(`{"bench":"pipe","variant":"none","tenant":"greedy"}`))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("over-quota submit = %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After hint")
		}
		// Another tenant is unaffected.
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			service.Request{Bench: "pipe", Variant: "none", Tenant: "modest"}, nil); code != http.StatusAccepted {
			t.Errorf("other tenant's submit = %d, want 202", code)
		}
		doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, nil)
	})
}

func TestBatchSubmit(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})

	var out struct {
		Jobs     []batchItem `json:"jobs"`
		Accepted int         `json:"accepted"`
	}
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/batch",
		`{"jobs":[{"bench":"pipe","variant":"none"},{"bench":"pipe","variant":"modified"},{"bench":"nope"}]}`, &out)
	if code != http.StatusAccepted {
		t.Fatalf("batch status %d, want 202", code)
	}
	if out.Accepted != 2 || len(out.Jobs) != 3 {
		t.Fatalf("accepted %d of %d items, want 2 of 3", out.Accepted, len(out.Jobs))
	}
	for i := 0; i < 2; i++ {
		if out.Jobs[i].Job == nil || out.Jobs[i].Job.ID == "" {
			t.Fatalf("item %d carries no job: %+v", i, out.Jobs[i])
		}
	}
	if bad := out.Jobs[2]; bad.Job != nil || bad.Status != http.StatusBadRequest || bad.Error == "" {
		t.Errorf("rejected item = %+v, want status 400 with error", bad)
	}
	for i := 0; i < 2; i++ {
		if got := pollTerminal(t, ts.URL, out.Jobs[i].Job.ID); got.State != service.StateDone {
			t.Errorf("batch job %d state %s (err %q)", i, got.State, got.Error)
		}
	}

	// A batch with nothing acceptable is a 400, as is an empty one.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/batch", `{"jobs":[{"bench":"nope"}]}`, nil); code != http.StatusBadRequest {
		t.Errorf("all-rejected batch status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/batch", `{"jobs":[]}`, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch status %d, want 400", code)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	view  service.JobView
}

// readSSE consumes an event stream until it ends, returning the events.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.view); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestSSEStream subscribes to a job's event stream and requires it to
// carry the lifecycle through to the terminal snapshot, then end.
func TestSSEStream(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	var v service.JobView
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.Request{Bench: "pipe", Variant: "none"}, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	events := readSSE(t, resp)
	if len(events) == 0 {
		t.Fatal("stream carried no events")
	}
	last := events[len(events)-1]
	if last.event != string(service.StateDone) || last.view.State != service.StateDone {
		t.Fatalf("last event %q (state %s), want done", last.event, last.view.State)
	}
	if last.view.Result == nil || last.view.Result.Instances != 2 {
		t.Errorf("terminal event result = %+v", last.view.Result)
	}
	for _, e := range events {
		if e.event != string(e.view.State) {
			t.Errorf("event name %q disagrees with payload state %s", e.event, e.view.State)
		}
	}

	// Streaming an unknown job is a 404, not an empty stream.
	resp2, err := http.Get(ts.URL + "/v1/jobs/job-404/events")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job = %d, want 404", resp2.StatusCode)
	}
}

// TestSSEDisconnectCounted hangs up mid-stream and requires the server to
// count the disconnect in /metrics instead of logging it as an error.
func TestSSEDisconnectCounted(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{
		Build:          buildWithSlow,
		ListBenchmarks: func() []string { return []string{"pipe", "slow"} },
	})
	var v service.JobView
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.Request{Bench: "slow"}, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first event so the stream is established, then hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		var mt service.Metrics
		doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &mt)
		if mt.ClientDisconnects >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client_disconnects never moved after mid-stream hangup")
		}
		time.Sleep(5 * time.Millisecond)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, nil)
	pollTerminal(t, ts.URL, v.ID)
}

// TestLongPollWait covers the ?wait= fallback for clients that cannot
// consume SSE: a generous window returns the terminal snapshot in one
// round trip; an elapsed window degrades to the current snapshot.
func TestLongPollWait(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{
		Build:          buildWithSlow,
		ListBenchmarks: func() []string { return []string{"pipe", "slow"} },
	})
	var v service.JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", service.Request{Bench: "pipe", Variant: "none"}, &v)
	var got service.JobView
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"?wait=60s", nil, &got); code != http.StatusOK {
		t.Fatalf("long poll status %d", code)
	}
	if got.State != service.StateDone {
		t.Fatalf("long poll returned non-terminal state %s", got.State)
	}

	var slow service.JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", service.Request{Bench: "slow"}, &slow)
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+slow.ID+"?wait=30ms", nil, &got); code != http.StatusOK {
		t.Fatalf("elapsed-window poll status %d", code)
	}
	if got.State.Terminal() {
		t.Fatalf("slow job already terminal (%s); the elapsed-window path was not exercised", got.State)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+slow.ID+"?wait=bogus", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad wait duration status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-404?wait=1s", nil, nil); code != http.StatusNotFound {
		t.Errorf("long poll on unknown job status %d, want 404", code)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+slow.ID, nil, nil)
	pollTerminal(t, ts.URL, slow.ID)
}

// TestSharedTierEndToEnd is the acceptance scenario for the shared
// outcome tier: a real fft-small analysis on one server, then the same
// submission against a *second* server process sharing only the store
// directory. The second run must re-simulate nothing — every section a
// shared hit — and report the same analytical summary byte for byte.
// Uses the real benchmark registry, so it is skipped in -short runs.
func TestSharedTierEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real fft analysis in -short mode")
	}
	dir := t.TempDir()
	run := func(tenant string) *service.JobView {
		shared, err := ostore.Open(ostore.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		mgr := service.New(service.Options{Workers: 1, Shared: shared})
		ts := httptest.NewServer(New(mgr, nil))
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			mgr.Close(ctx)
			shared.Close()
		}()
		var v service.JobView
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			service.Request{Bench: "fft", Variant: "small", Tenant: tenant}, &v)
		if code != http.StatusAccepted {
			t.Fatalf("submit status %d", code)
		}
		got := pollTerminal(t, ts.URL, v.ID)
		if got.State != service.StateDone {
			t.Fatalf("fft job on %s: %s (err %q)", tenant, got.State, got.Error)
		}
		var mt service.Metrics
		doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &mt)
		if mt.SharedSections == 0 {
			t.Errorf("shared_sections still zero after a completed job on %s", tenant)
		}
		return &got
	}

	first := run("ci-a")
	r1 := first.Result
	if r1.SharedHits != 0 || r1.SharedMisses != r1.Instances || r1.Injected != r1.Instances {
		t.Fatalf("cold run: hits=%d misses=%d injected=%d instances=%d",
			r1.SharedHits, r1.SharedMisses, r1.Injected, r1.Instances)
	}

	second := run("ci-b")
	r2 := second.Result
	if r2.Injected != 0 {
		t.Errorf("warm run re-simulated %d instances, want 0", r2.Injected)
	}
	if r2.SharedHits != r2.Instances || r2.Reused != r2.Instances {
		t.Errorf("warm run: shared_hits=%d reused=%d, want both %d", r2.SharedHits, r2.Reused, r2.Instances)
	}
	if a, b := neutralJSON(t, r1), neutralJSON(t, r2); a != b {
		t.Errorf("summaries diverge across the shared tier:\n A %s\n B %s", a, b)
	}
}

// neutralJSON renders a summary with the work/provenance fields zeroed —
// the fields that legitimately differ between a fresh campaign and one
// served from the shared tier — so the analytical remainder can be
// compared byte for byte.
func neutralJSON(t *testing.T, s *core.Summary) string {
	t.Helper()
	c := *s
	c.Reused, c.Injected = 0, 0
	c.SharedHits, c.SharedMisses = 0, 0
	c.FFExperiments, c.FFSimInstrs, c.FFWall = 0, 0, 0
	c.FFCleanInstrs, c.FFFaultyInstrs = 0, 0
	c.ElidedExperiments, c.ElidedSimInstrs = 0, 0
	c.BatchedExperiments, c.BatchReplicasAvg = 0, 0
	c.ResumedExperiments = 0
	c.WALNotes = nil
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
