package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"fastflip/internal/prog"
	"fastflip/internal/service"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
	"fastflip/internal/vm"
)

// slowSpinProg builds a single-section program that spins long enough to
// still be running while a test saturates the queue behind it.
func slowSpinProg() *spec.Program {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Call("spin")
	main.SecEnd(0)
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	spin := prog.NewFunc("spin")
	spin.Li(1, 0)
	spin.Fld(0, 1, 0)
	spin.Fli(1, 0)
	spin.Li(12, 0)
	spin.Li(13, 50000)
	spin.Label("loop")
	spin.Fadd(0, 0, 1)
	spin.Addi(12, 12, 1)
	spin.Blt(12, 13, "loop")
	spin.Li(1, 0)
	spin.Fst(0, 1, 1)
	spin.Ret()
	p.MustAdd(spin.MustBuild())

	linked, err := p.Link("main")
	if err != nil {
		panic(err)
	}
	x := spec.Buffer{Name: "x", Addr: 0, Len: 1, Kind: spec.Float}
	y := spec.Buffer{Name: "y", Addr: 1, Len: 1, Kind: spec.Float}
	return &spec.Program{
		Name: "slow", Linked: linked, MemWords: 4,
		Init: func(m *vm.Machine) { m.Mem[0] = 0x3FF0000000000000 },
		Sections: []spec.Section{{ID: 0, Name: "spin", Instances: []spec.InstanceIO{
			{Inputs: []spec.Buffer{x}, Outputs: []spec.Buffer{y}, Live: []spec.Buffer{x, y}},
		}}},
		FinalOutputs: []spec.Buffer{y},
	}
}

// doRaw issues a request and returns the full response for header
// inspection (doJSON discards headers).
func doRaw(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestReadyzFreshServer(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	var body map[string]string
	if code := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200", code)
	}
	if body["status"] != "ready" {
		t.Errorf("readyz body = %v", body)
	}
	// Liveness must agree while the process is healthy.
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
}

// TestReadyzAndSubmitOnSaturatedQueue fills the one-deep queue and
// requires both the readiness probe and a further submission to degrade
// to 503 with a Retry-After hint — while liveness stays 200.
func TestReadyzAndSubmitOnSaturatedQueue(t *testing.T) {
	opts := service.Options{
		QueueDepth: 1,
		Build: func(name, variant string) (*spec.Program, error) {
			if name == "slow" {
				return slowSpinProg(), nil
			}
			return testprog.Pipeline(), nil
		},
		ListBenchmarks: func() []string { return []string{"slow", "pipe"} },
	}
	ts, _ := newTestServer(t, opts)

	var running service.JobView
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", service.Request{Bench: "slow"}, &running); code != http.StatusAccepted {
		t.Fatalf("submit slow = %d", code)
	}
	pollRunning(t, ts.URL, running.ID)
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", service.Request{Bench: "pipe"}, nil); code != http.StatusAccepted {
		t.Fatalf("submit queued = %d", code)
	}

	resp := doRaw(t, http.MethodGet, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz with full queue = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("readyz Retry-After = %q, want %q", got, retryAfterSeconds)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "unready" || body["reason"] == "" {
		t.Errorf("readyz body = %v", body)
	}

	raw, _ := json.Marshal(service.Request{Bench: "pipe"})
	sub := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", raw)
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on full queue = %d, want 503", sub.StatusCode)
	}
	if got := sub.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("submit Retry-After = %q, want %q", got, retryAfterSeconds)
	}

	// Liveness is about the process, not the queue.
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("GET /healthz with full queue = %d, want 200", code)
	}

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	pollTerminal(t, ts.URL, running.ID)
}

// TestReadyzUnwritableWALDir degrades readiness when the WAL directory
// cannot be created (its path is occupied by a regular file) and
// recovers once it can.
func TestReadyzUnwritableWALDir(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(walDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, service.Options{WALDir: walDir})

	resp := doRaw(t, http.MethodGet, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz with unwritable WAL dir = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("Retry-After = %q, want %q", got, retryAfterSeconds)
	}

	if err := os.Remove(walDir); err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("GET /readyz after restoring WAL dir = %d, want 200", code)
	}
}

// TestBadRequestHasNoRetryAfter: only transient 503s advertise a retry
// hint; client errors must not.
func TestBadRequestHasNoRetryAfter(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	resp := doRaw(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(`{"bench":"nope"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit unknown bench = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Errorf("400 response carries Retry-After %q", got)
	}
}
