package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fastflip/internal/coord"
	"fastflip/internal/service"
)

// newCoordServer is newTestServer with the worker-registration routes
// enabled.
func newCoordServer(t *testing.T) (*httptest.Server, *coord.Coordinator) {
	t.Helper()
	c := coord.NewCoordinator(coord.Options{Heartbeat: -1})
	t.Cleanup(c.Close)
	opts := service.Options{
		Build:          testBuild,
		ListBenchmarks: func() []string { return []string{"pipe"} },
		Coordinator:    c,
	}
	mgr := service.New(opts)
	ts := httptest.NewServer(New(mgr, nil).WithCoordinator(c))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ts, c
}

func TestWorkerRegistration(t *testing.T) {
	ts, _ := newCoordServer(t)
	wsrv := httptest.NewServer(coord.NewWorker(coord.WorkerOptions{ID: "w-reg", Build: testBuild}))
	defer wsrv.Close()

	var reg map[string]string
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/workers", map[string]string{"url": wsrv.URL}, &reg); status != http.StatusCreated {
		t.Fatalf("registration status %d", status)
	}
	if reg["id"] != "w-reg" || reg["url"] != wsrv.URL {
		t.Errorf("registration reply %v", reg)
	}

	var list []coord.WorkerView
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/workers", nil, &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if len(list) != 1 || list[0].ID != "w-reg" || !list[0].Live {
		t.Errorf("worker list %+v", list)
	}
	// The circuit state and health score ride along in the same view: a
	// freshly registered worker starts with a closed breaker, full health.
	if list[0].State != "closed" || list[0].Health != 1 {
		t.Errorf("fresh worker state %q health %v, want closed breaker at full health", list[0].State, list[0].Health)
	}
}

func TestWorkerRegistrationRejectsDeadAndMalformed(t *testing.T) {
	ts, _ := newCoordServer(t)

	var errResp map[string]string
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/workers", map[string]string{"url": "http://127.0.0.1:1"}, &errResp); status != http.StatusBadGateway {
		t.Errorf("dead worker registration status %d, want 502", status)
	}
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/workers", map[string]string{}, &errResp); status != http.StatusBadRequest {
		t.Errorf("missing url status %d, want 400", status)
	}
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/workers", "{", &errResp); status != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", status)
	}

	var list []coord.WorkerView
	doJSON(t, http.MethodGet, ts.URL+"/v1/workers", nil, &list)
	if len(list) != 0 {
		t.Errorf("failed registrations left workers behind: %+v", list)
	}
}

// TestWorkerRoutesAbsentWithoutCoordinator: a plain deployment keeps its
// exact route set — the distributed endpoints 404.
func TestWorkerRoutesAbsentWithoutCoordinator(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	resp, err := http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/workers without coordinator: %d, want 404", resp.StatusCode)
	}
}

// TestDistributedJobOverHTTP: the full daemon shape — submit a job to a
// coordinator server backed by one registered in-process worker, and the
// job's summary reports remote execution.
func TestDistributedJobOverHTTP(t *testing.T) {
	ts, c := newCoordServer(t)
	wsrv := httptest.NewServer(coord.NewWorker(coord.WorkerOptions{ID: "w-job", Build: testBuild, Workers: 1}))
	defer wsrv.Close()
	if _, err := c.AddWorker(wsrv.URL); err != nil {
		t.Fatal(err)
	}

	var job service.JobView
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{"bench": "pipe", "variant": "none"}, &job); status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v service.JobView
		if status := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID, nil, &v); status != http.StatusOK {
			t.Fatalf("poll status %d", status)
		}
		if v.State.Terminal() {
			if v.State != service.StateDone {
				t.Fatalf("job finished %s: %s", v.State, v.Error)
			}
			if v.Result == nil || v.Result.RemoteExperiments == 0 || v.Result.ShardsMerged == 0 {
				t.Fatalf("job ran nothing remotely: %+v", v.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var met service.Metrics
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &met)
	if met.Dist == nil || met.Dist.RemoteExperiments == 0 || met.Dist.ShardsCompleted == 0 {
		t.Errorf("distributed metrics not exposed: %+v", met.Dist)
	}
}
