package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastflip/internal/service"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
)

// testBuild serves the testprog pipeline as benchmark "pipe". Variant
// "modified" exercises partial reuse; any other unknown variant fails.
func testBuild(name, variant string) (*spec.Program, error) {
	if name != "pipe" {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	switch variant {
	case "none":
		return testprog.Pipeline(), nil
	case "modified":
		return testprog.PipelineModified(), nil
	}
	return nil, fmt.Errorf("unknown variant %q", variant)
}

func newTestServer(t *testing.T, opts service.Options) (*httptest.Server, *service.Manager) {
	t.Helper()
	if opts.Build == nil {
		opts.Build = testBuild
		opts.ListBenchmarks = func() []string { return []string{"pipe"} }
	}
	mgr := service.New(opts)
	ts := httptest.NewServer(New(mgr, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ts, mgr
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollTerminal polls GET /v1/jobs/{id} until the job finishes.
func pollTerminal(t *testing.T, base, id string) service.JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v service.JobView
		if code := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &v); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.JobView{}
}

func pollRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v service.JobView
		doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &v)
		if v.State == service.StateRunning {
			return
		}
		if v.State.Terminal() {
			t.Fatalf("job %s finished (%s) before it was observed running", id, v.State)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func TestSubmitPollResult(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})

	var metricsBefore service.Metrics
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &metricsBefore)

	var v service.JobView
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.Request{Bench: "pipe", Variant: "none", Baseline: true}, &v)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if v.ID == "" || v.Bench != "pipe" {
		t.Fatalf("submit response %+v", v)
	}

	got := pollTerminal(t, ts.URL, v.ID)
	if got.State != service.StateDone {
		t.Fatalf("job state %s (err %q), want done", got.State, got.Error)
	}
	if got.Result == nil || got.Result.Bench != "pipe" || got.Result.Variant != "none" {
		t.Fatalf("result %+v", got.Result)
	}
	if len(got.Result.Targets) == 0 {
		t.Error("baseline job returned no target evaluations")
	}

	// The listing includes the job.
	var list []service.JobView
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list) != 1 || list[0].ID != v.ID {
		t.Errorf("list = %+v", list)
	}

	// Counters moved: one job done, sections injected, experiments run.
	var metricsAfter service.Metrics
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &metricsAfter)
	if metricsAfter.JobsDone != metricsBefore.JobsDone+1 {
		t.Errorf("jobs_done %d -> %d, want +1", metricsBefore.JobsDone, metricsAfter.JobsDone)
	}
	if metricsAfter.StoreMisses == metricsBefore.StoreMisses {
		t.Error("store_misses did not move")
	}
	if metricsAfter.InjectionsRun == metricsBefore.InjectionsRun {
		t.Error("injections_run did not move")
	}
	if metricsAfter.StoreSections == 0 {
		t.Error("store_sections still zero after a completed job")
	}
	// The default config batches same-site experiments; the pipe fixture's
	// classes all batch, so the counters and the derived mean width move.
	if metricsAfter.BatchedExperiments == metricsBefore.BatchedExperiments {
		t.Error("batched_experiments did not move")
	}
	if metricsAfter.BatchReplicasAvg <= 0 {
		t.Errorf("batch_replicas_avg = %v, want > 0", metricsAfter.BatchReplicasAvg)
	}
}

func TestStoreCacheAcrossRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	for i, wantReused := range []int{0, 2} {
		var v service.JobView
		doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			service.Request{Bench: "pipe", Variant: "none"}, &v)
		got := pollTerminal(t, ts.URL, v.ID)
		if got.State != service.StateDone {
			t.Fatalf("submission %d: state %s", i, got.State)
		}
		if got.Result.Reused != wantReused {
			t.Errorf("submission %d reused %d sections, want %d", i, got.Result.Reused, wantReused)
		}
	}
	// A modified version reuses the unchanged section only.
	var v service.JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.Request{Bench: "pipe", Variant: "modified", Modified: true}, &v)
	got := pollTerminal(t, ts.URL, v.ID)
	if got.Result.Reused != 1 || got.Result.Injected != 1 {
		t.Errorf("modified version: reused=%d injected=%d, want 1/1",
			got.Result.Reused, got.Result.Injected)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"bench": `},
		{"unknown field", `{"bench":"pipe","nope":1}`},
		{"unknown benchmark", `{"bench":"nope"}`},
		{"unknown variant", `{"bench":"pipe","variant":"huge"}`},
		{"trailing data", `{"bench":"pipe"} {"bench":"pipe"}`},
	}
	for _, tc := range cases {
		var e map[string]string
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tc.body, &e)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if e["error"] == "" {
			t.Errorf("%s: no error message in body", tc.name)
		}
	}
}

func TestUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-404", nil, nil); code != http.StatusNotFound {
		t.Errorf("get status %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/job-404", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete status %d, want 404", code)
	}
}

func TestHealthAndBenchmarks(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	var health map[string]string
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
	var infos []service.BenchmarkInfo
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/benchmarks", nil, &infos); code != http.StatusOK {
		t.Fatalf("benchmarks status %d", code)
	}
	if len(infos) != 1 || infos[0].Name != "pipe" {
		t.Errorf("benchmarks = %+v", infos)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, service.Options{})
	resp, err := http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz status %d, want 405", resp.StatusCode)
	}
}

// TestEndToEndFFT is the acceptance scenario: a real fft-small analysis
// submitted over HTTP and polled to completion, then a second in-flight
// job cancelled mid-campaign. Uses the real benchmark registry, so it is
// skipped in -short runs.
func TestEndToEndFFT(t *testing.T) {
	if testing.Short() {
		t.Skip("real fft analysis in -short mode")
	}
	// The real benchmark registry (bench.Build), not the pipe fixture.
	mgr := service.New(service.Options{Workers: 1})
	ts := httptest.NewServer(New(mgr, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})

	var v service.JobView
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.Request{Bench: "fft", Variant: "small"}, &v)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	got := pollTerminal(t, ts.URL, v.ID)
	if got.State != service.StateDone {
		t.Fatalf("fft job state %s (err %q)", got.State, got.Error)
	}
	if got.Result == nil || got.Result.SiteCount == 0 || got.Result.Injected == 0 {
		t.Fatalf("fft result %+v", got.Result)
	}

	// Second job: a fresh benchmark with a multi-second campaign,
	// cancelled as soon as it is observed running.
	var v2 service.JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		service.Request{Bench: "lud", Variant: "none"}, &v2)
	pollRunning(t, ts.URL, v2.ID)
	start := time.Now()
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v2.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	got2 := pollTerminal(t, ts.URL, v2.ID)
	if got2.State != service.StateCancelled {
		t.Fatalf("cancelled job state %s", got2.State)
	}
	if wait := time.Since(start); wait > 30*time.Second {
		t.Errorf("cancellation took %v", wait)
	}
	// A second DELETE now conflicts.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v2.ID, nil, nil); code != http.StatusConflict {
		t.Errorf("cancel finished job status %d, want 409", code)
	}
}
