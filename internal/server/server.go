// Package server exposes a service.Manager over a stdlib-only JSON HTTP
// API — the front door of the ffserved daemon:
//
//	POST   /v1/jobs        submit an analysis        → 202 + job
//	GET    /v1/jobs        list retained jobs        → 200 + [job]
//	GET    /v1/jobs/{id}   poll one job              → 200 + job
//	DELETE /v1/jobs/{id}   cancel a job              → 200 + job
//	GET    /v1/benchmarks  available benchmarks      → 200 + [benchmark]
//	GET    /healthz        liveness                  → 200
//	GET    /readyz         readiness                 → 200 or 503 + reason
//	GET    /metrics        expvar-style counters     → 200 + metrics
//
// Liveness and readiness are deliberately split: /healthz answers "is the
// process serving requests" and only ever returns 200, while /readyz
// answers "would a new submission be accepted and durable" — it degrades
// to 503 when the queue is saturated, the manager is draining, or the WAL
// directory is unwritable, so orchestrators stop routing new work without
// restarting a process that is still finishing jobs.
//
// Errors are returned as {"error": "..."} with 400 (bad request), 404
// (unknown job), 409 (cancelling a finished job), or 503 (queue full or
// shutting down). Queue-full 503s carry a Retry-After header so clients
// back off instead of hammering the queue.
package server

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"

	"fastflip/internal/coord"
	"fastflip/internal/service"
)

// maxBodyBytes bounds a submission body; requests are tiny.
const maxBodyBytes = 1 << 20

// Server routes HTTP requests to a Manager.
type Server struct {
	mgr   *service.Manager
	mux   *http.ServeMux
	log   *log.Logger
	coord *coord.Coordinator
}

// New returns a handler serving the v1 API for mgr. logger may be nil to
// disable request-failure logging.
func New(mgr *service.Manager, logger *log.Logger) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), log: logger}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/benchmarks", s.benchmarks)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// WithCoordinator registers the distributed-campaign endpoints on top of
// the v1 API:
//
//	POST /v1/workers  {"url": "http://host:port"}  register a worker → 201
//	GET  /v1/workers  list registered workers       → 200 + [worker]
//
// Kept off New so existing single-process deployments keep their exact
// route set.
func (s *Server) WithCoordinator(c *coord.Coordinator) *Server {
	s.coord = c
	s.mux.HandleFunc("POST /v1/workers", s.addWorker)
	s.mux.HandleFunc("GET /v1/workers", s.listWorkers)
	return s
}

func (s *Server) addWorker(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" {
		s.fail(w, http.StatusBadRequest, errors.New("missing worker url"))
		return
	}
	id, err := s.coord.AddWorker(req.URL)
	if err != nil {
		// The worker did not answer its health probe: the registration is
		// refused so the fleet never contains a worker that was down on
		// arrival.
		s.fail(w, http.StatusBadGateway, err)
		return
	}
	s.reply(w, http.StatusCreated, map[string]string{"url": req.URL, "id": id})
}

func (s *Server) listWorkers(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.coord.Workers())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req service.Request
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, errors.New("trailing data after request object"))
		return
	}
	job, err := s.mgr.Submit(req)
	if err != nil {
		status := submitStatus(err)
		if status == http.StatusServiceUnavailable {
			// A full queue is transient: tell well-behaved clients when to
			// come back instead of letting them hot-loop on 503s.
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		s.fail(w, status, err)
		return
	}
	s.reply(w, http.StatusAccepted, job)
}

// retryAfterSeconds is the backoff hint attached to queue-full and
// draining 503 responses. Campaigns run for minutes; retrying sooner than
// this cannot succeed often enough to matter.
const retryAfterSeconds = "5"

func submitStatus(err error) int {
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		// Build errors: unknown benchmark or variant.
		return http.StatusBadRequest
	}
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.mgr.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	s.reply(w, http.StatusOK, job)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.mgr.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, service.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrFinished):
		s.fail(w, http.StatusConflict, err)
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
	default:
		s.reply(w, http.StatusOK, job)
	}
}

func (s *Server) benchmarks(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.mgr.Benchmarks())
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.mgr.Readiness(); err != nil {
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.reply(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	s.reply(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.mgr.Metrics())
}

func (s *Server) reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && s.log != nil && !errors.Is(err, io.ErrClosedPipe) {
		s.log.Printf("server: encoding response: %v", err)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if s.log != nil && status >= 500 {
		s.log.Printf("server: %v", err)
	}
	s.reply(w, status, map[string]string{"error": err.Error()})
}
