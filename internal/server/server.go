// Package server exposes a service.Manager over a stdlib-only JSON HTTP
// API — the front door of the ffserved daemon:
//
//	POST   /v1/jobs               submit an analysis        → 202 + job
//	POST   /v1/jobs/batch         submit several            → 202 + [item]
//	GET    /v1/jobs               list retained jobs        → 200 + [job]
//	GET    /v1/jobs/{id}          poll one job              → 200 + job
//	GET    /v1/jobs/{id}?wait=30s long-poll until terminal  → 200 + job
//	GET    /v1/jobs/{id}/events   stream progress (SSE)     → 200 + events
//	DELETE /v1/jobs/{id}          cancel a job              → 200 + job
//	GET    /v1/benchmarks         available benchmarks      → 200 + [benchmark]
//	GET    /healthz               liveness                  → 200
//	GET    /readyz                readiness                 → 200 or 503 + reason
//	GET    /metrics               expvar-style counters     → 200 + metrics
//
// The events stream is Server-Sent Events: one `event: <state>` /
// `data: <job JSON>` message per state or progress change, coalesced for
// slow consumers, ending after the terminal state. Clients that cannot
// speak SSE use `?wait=` on the poll endpoint instead: it blocks until
// the job finishes or the duration elapses, then returns the current
// snapshot either way — one request per job instead of a polling loop.
//
// Liveness and readiness are deliberately split: /healthz answers "is the
// process serving requests" and only ever returns 200, while /readyz
// answers "would a new submission be accepted and durable" — it degrades
// to 503 when the queue is saturated, the manager is draining, or the WAL
// directory is unwritable, so orchestrators stop routing new work without
// restarting a process that is still finishing jobs.
//
// Errors are returned as {"error": "..."} with 400 (a request the client
// can fix: malformed JSON, unknown benchmark, invalid spec), 404 (unknown
// job), 409 (cancelling a finished job), 429 (tenant over its active-job
// quota), 500 (the service's own machinery failed — unwritable WAL
// directory, store-tier I/O), or 503 (queue full or shutting down).
// Queue-full 503s and quota 429s carry a Retry-After header so clients
// back off instead of hammering the queue.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"syscall"
	"time"

	"fastflip/internal/coord"
	"fastflip/internal/service"
)

// maxBodyBytes bounds a submission body; requests are tiny.
const maxBodyBytes = 1 << 20

// Server routes HTTP requests to a Manager.
type Server struct {
	mgr   *service.Manager
	mux   *http.ServeMux
	log   *log.Logger
	coord *coord.Coordinator
	// disconnects counts response writes abandoned because the client
	// went away mid-write; surfaced as client_disconnects in /metrics.
	disconnects atomic.Uint64
}

// New returns a handler serving the v1 API for mgr. logger may be nil to
// disable request-failure logging.
func New(mgr *service.Manager, logger *log.Logger) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), log: logger}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("POST /v1/jobs/batch", s.submitBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/benchmarks", s.benchmarks)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// WithCoordinator registers the distributed-campaign endpoints on top of
// the v1 API:
//
//	POST /v1/workers  {"url": "http://host:port"}  register a worker → 201
//	GET  /v1/workers  list registered workers       → 200 + [worker]
//
// Kept off New so existing single-process deployments keep their exact
// route set.
func (s *Server) WithCoordinator(c *coord.Coordinator) *Server {
	s.coord = c
	s.mux.HandleFunc("POST /v1/workers", s.addWorker)
	s.mux.HandleFunc("GET /v1/workers", s.listWorkers)
	return s
}

func (s *Server) addWorker(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" {
		s.fail(w, http.StatusBadRequest, errors.New("missing worker url"))
		return
	}
	id, err := s.coord.AddWorker(req.URL)
	if err != nil {
		// The worker did not answer its health probe: the registration is
		// refused so the fleet never contains a worker that was down on
		// arrival.
		s.fail(w, http.StatusBadGateway, err)
		return
	}
	s.reply(w, http.StatusCreated, map[string]string{"url": req.URL, "id": id})
}

func (s *Server) listWorkers(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.coord.Workers())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req service.Request
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, errors.New("trailing data after request object"))
		return
	}
	job, err := s.mgr.Submit(req)
	if err != nil {
		status := submitStatus(err)
		if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
			// A full queue or a tenant at quota is transient: tell
			// well-behaved clients when to come back instead of letting
			// them hot-loop on rejections.
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		s.fail(w, status, err)
		return
	}
	s.reply(w, http.StatusAccepted, job)
}

// maxBatchJobs bounds one batch submission.
const maxBatchJobs = 256

// batchItem is one entry of a batch submission's response: the accepted
// job, or the per-item failure with the status it would have earned as a
// single submission.
type batchItem struct {
	Job    *service.JobView `json:"job,omitempty"`
	Error  string           `json:"error,omitempty"`
	Status int              `json:"status,omitempty"`
}

// submitBatch submits several analysis requests in one round trip. Items
// are independent: each is accepted or rejected on its own, in order, and
// the response carries one batchItem per request. The response status is
// 202 when at least one item was accepted, 400 when none were.
func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Jobs []service.Request `json:"jobs"`
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("batch has no jobs"))
		return
	}
	if len(req.Jobs) > maxBatchJobs {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch has %d jobs (max %d)", len(req.Jobs), maxBatchJobs))
		return
	}
	items := make([]batchItem, 0, len(req.Jobs))
	accepted := 0
	for _, jr := range req.Jobs {
		job, err := s.mgr.Submit(jr)
		if err != nil {
			items = append(items, batchItem{Error: err.Error(), Status: submitStatus(err)})
			continue
		}
		j := job
		items = append(items, batchItem{Job: &j})
		accepted++
	}
	status := http.StatusAccepted
	if accepted == 0 {
		status = http.StatusBadRequest
	}
	s.reply(w, status, map[string]any{"jobs": items, "accepted": accepted})
}

// retryAfterSeconds is the backoff hint attached to queue-full and
// draining 503 responses. Campaigns run for minutes; retrying sooner than
// this cannot succeed often enough to matter.
const retryAfterSeconds = "5"

// submitStatus classifies a submit failure. The contract: 4xx means "your
// request, fix it" (unknown benchmark, malformed spec, over quota), 5xx
// means "our machinery" (unwritable WAL directory, store-tier I/O), 503
// means "try again later". Before the classification the default arm
// mapped *every* non-queue error to 400, so infrastructure failures
// masqueraded as client errors and nobody's dashboard noticed.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, service.ErrTenantQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrInfra):
		return http.StatusInternalServerError
	default:
		// Build and validation errors: unknown benchmark or variant,
		// malformed spec (service.ErrInvalid).
		return http.StatusBadRequest
	}
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.mgr.List())
}

// maxWait caps the ?wait= long-poll duration: longer holds pin server
// connections without improving on the SSE stream.
const maxWait = 5 * time.Minute

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wq := r.URL.Query().Get("wait"); wq != "" {
		// Long-poll fallback for clients that cannot consume SSE: block
		// until the job is terminal or the window elapses, then answer
		// with the current snapshot either way.
		d, err := time.ParseDuration(wq)
		if err != nil || d <= 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad wait duration %q", wq))
			return
		}
		if d > maxWait {
			d = maxWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		job, err := s.mgr.Wait(ctx, id)
		if err == nil {
			s.reply(w, http.StatusOK, job)
			return
		}
		if errors.Is(err, service.ErrNotFound) {
			s.fail(w, http.StatusNotFound, err)
			return
		}
		// Window elapsed (or the client went away): fall through to the
		// plain snapshot below.
	}
	job, err := s.mgr.Get(id)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	s.reply(w, http.StatusOK, job)
}

// events streams a job's lifecycle as Server-Sent Events: one message per
// state or progress change (coalesced under load), the terminal snapshot
// last. A response writer without flush support degrades to a single
// long-poll: wait for the terminal state, reply once.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, canStream := w.(http.Flusher)
	if !canStream {
		job, err := s.mgr.Wait(r.Context(), id)
		if errors.Is(err, service.ErrNotFound) {
			s.fail(w, http.StatusNotFound, err)
			return
		}
		if err != nil {
			if job, err = s.mgr.Get(id); err != nil {
				s.fail(w, http.StatusNotFound, err)
				return
			}
		}
		s.reply(w, http.StatusOK, job)
		return
	}
	ch, cancel, err := s.mgr.Watch(id)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return
			}
			data, merr := json.Marshal(v)
			if merr != nil {
				return
			}
			if _, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", v.State, data); werr != nil {
				if isDisconnect(werr) {
					s.disconnects.Add(1)
				} else if s.log != nil {
					s.log.Printf("server: streaming events: %v", werr)
				}
				return
			}
			fl.Flush()
			if v.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			// The client hung up; that is the normal end of a stream whose
			// consumer lost interest, not an error.
			s.disconnects.Add(1)
			return
		}
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.mgr.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, service.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrFinished):
		s.fail(w, http.StatusConflict, err)
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
	default:
		s.reply(w, http.StatusOK, job)
	}
}

func (s *Server) benchmarks(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, s.mgr.Benchmarks())
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.mgr.Readiness(); err != nil {
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.reply(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": err.Error()})
		return
	}
	s.reply(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	mt := s.mgr.Metrics()
	mt.ClientDisconnects = s.disconnects.Load()
	s.reply(w, http.StatusOK, mt)
}

// isDisconnect reports whether a response-write error means the client
// went away rather than anything being wrong server-side. Under polling
// load these are routine (a poller's deadline fires between our
// WriteHeader and the body write), so they are counted, not logged.
func isDisconnect(err error) bool {
	return errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, http.ErrHandlerTimeout)
}

func (s *Server) reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		if isDisconnect(err) {
			s.disconnects.Add(1)
			return
		}
		if s.log != nil {
			s.log.Printf("server: encoding response: %v", err)
		}
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if s.log != nil && status >= 500 {
		s.log.Printf("server: %v", err)
	}
	s.reply(w, status, map[string]string{"error": err.Error()})
}
