// Benchmarks that regenerate every table and figure of the FastFlip paper
// (see DESIGN.md's experiment index) plus ablations of the design choices.
//
// The evaluation suite (all five benchmarks, three versions each, FastFlip
// and the monolithic baseline) is computed once and shared by the table
// benchmarks; per-stage benchmarks measure the individual analyses. Run
// with:
//
//	go test -bench=. -benchmem
package fastflip_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"fastflip"

	"fastflip/internal/bench"
	"fastflip/internal/core"
	"fastflip/internal/inject"
	"fastflip/internal/knap"
	"fastflip/internal/sens"
	"fastflip/internal/sites"
	"fastflip/internal/tables"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

// --- shared evaluation suite (computed once) ---

var (
	suiteOnce sync.Once
	suiteVal  *tables.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *tables.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = tables.RunSuite(tables.DefaultOptions())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// reportSuiteCosts attaches the headline Table 3 metrics to a benchmark.
func reportSuiteCosts(b *testing.B, s *tables.Suite) {
	var ffMod, baseMod float64
	for _, run := range s.Runs {
		if run.Variant == bench.None {
			continue
		}
		ffMod += float64(run.R.FFCost())
		baseMod += float64(run.R.BaseCost())
	}
	if ffMod > 0 {
		b.ReportMetric(baseMod/ffMod, "agg-speedup")
	}
}

// BenchmarkTable1 regenerates the benchmark inventory (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table1()
	}
	sink(b, out)
	var totalSites float64
	for _, name := range fastflip.Benchmarks() {
		totalSites += float64(s.Get(name, bench.None).R.SiteCount)
	}
	b.ReportMetric(totalSites, "error-sites")
}

// BenchmarkTable2 regenerates the ε = 0 utility comparison (paper Table 2).
func BenchmarkTable2(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table2()
	}
	sink(b, out)
	// Worst loss of value across all versions and targets at v_trgt.
	worst := 0.0
	for _, run := range s.Runs {
		for _, ev := range run.EvalsStrict {
			if loss := ev.Target - ev.Achieved; loss > worst {
				worst = loss
			}
		}
	}
	b.ReportMetric(worst, "max-value-loss")
}

// BenchmarkTable3 regenerates the analysis cost comparison (paper Table 3).
func BenchmarkTable3(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table3()
	}
	sink(b, out)
	reportSuiteCosts(b, s)
}

// BenchmarkTable4 regenerates the Campipe no-adjustment comparison
// (paper Table 4).
func BenchmarkTable4(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table4()
	}
	sink(b, out)
	// The masking effect: achieved value without adjustment at 0.90.
	if run := s.Get("campipe", bench.None); run != nil {
		b.ReportMetric(run.EvalsNoAdjust[0].Achieved, "campipe-unadjusted")
	}
}

// BenchmarkEpsilon regenerates the §6.4 comparison (ε = 0.01).
func BenchmarkEpsilon(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table64()
	}
	sink(b, out)
}

// BenchmarkFigure1 regenerates the LUD target sweep (paper Figure 1).
func BenchmarkFigure1(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = s.Figure1("lud")
		if err != nil {
			b.Fatal(err)
		}
	}
	sink(b, out)
}

// BenchmarkEq2 regenerates the symbolic end-to-end specification (§3.1).
func BenchmarkEq2(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = s.Eq2("lud")
		if err != nil {
			b.Fatal(err)
		}
	}
	sink(b, out)
}

// --- per-stage benchmarks ---

// BenchmarkFastFlipAnalyze measures FastFlip's first (no-reuse) analysis.
func BenchmarkFastFlipAnalyze(b *testing.B) {
	for _, name := range fastflip.Benchmarks() {
		b.Run(name, func(b *testing.B) {
			p := bench.MustBuild(name, bench.None)
			var sim uint64
			for i := 0; i < b.N; i++ {
				a := core.NewAnalyzer(core.DefaultConfig())
				r, err := a.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
				sim = r.FFCost()
			}
			b.ReportMetric(float64(sim), "sim-instrs")
		})
	}
}

// BenchmarkBaselineAnalyze measures the monolithic baseline.
func BenchmarkBaselineAnalyze(b *testing.B) {
	for _, name := range fastflip.Benchmarks() {
		b.Run(name, func(b *testing.B) {
			p := bench.MustBuild(name, bench.None)
			var sim uint64
			for i := 0; i < b.N; i++ {
				a := core.NewAnalyzer(core.DefaultConfig())
				r, err := a.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
				a.RunBaseline(r)
				sim = r.BaseCost()
			}
			b.ReportMetric(float64(sim), "sim-instrs")
		})
	}
}

// seededAnalyzers caches, per benchmark, an analyzer whose store already
// holds the original version's per-section results.
var (
	seededMu  sync.Mutex
	seededMap = map[string]*core.Analyzer{}
)

func seededAnalyzer(b *testing.B, name string) *core.Analyzer {
	b.Helper()
	seededMu.Lock()
	defer seededMu.Unlock()
	if a, ok := seededMap[name]; ok {
		return a
	}
	a := core.NewAnalyzer(core.DefaultConfig())
	if _, err := a.Analyze(bench.MustBuild(name, bench.None)); err != nil {
		b.Fatal(err)
	}
	seededMap[name] = a
	return a
}

// BenchmarkIncremental measures FastFlip's re-analysis of modified
// versions against a store seeded with the original version — the paper's
// headline scenario.
func BenchmarkIncremental(b *testing.B) {
	for _, name := range fastflip.Benchmarks() {
		for _, variant := range []bench.Variant{bench.Small, bench.Large} {
			b.Run(name+"-"+string(variant), func(b *testing.B) {
				seeded := seededAnalyzer(b, name)
				p := bench.MustBuild(name, variant)
				b.ResetTimer()
				var r *core.Result
				for i := 0; i < b.N; i++ {
					// Each iteration replays against a snapshot of the
					// original version's store, so every measured run is
					// a genuine first re-analysis.
					a := &core.Analyzer{Cfg: seeded.Cfg, Store: seeded.Store.Clone()}
					var err error
					r, err = a.Analyze(p)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.FFCost()), "sim-instrs")
				b.ReportMetric(float64(r.ReusedInstances), "reused-sections")
			})
		}
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationPruning compares injection effort with and without
// equivalence-class pruning on SHA2, whose looped sections (64 schedule
// steps, 64 compression rounds) give classes many dynamic members.
// Straight-line sections (BScholes) have singleton classes and gain
// nothing — pruning pays off exactly where loops repeat instructions.
func BenchmarkAblationPruning(b *testing.B) {
	for _, prune := range []bool{true, false} {
		label := "pruned"
		if !prune {
			label = "exhaustive"
		}
		b.Run(label, func(b *testing.B) {
			p := bench.MustBuild("sha2", bench.None)
			cfg := core.DefaultConfig()
			cfg.Prune = prune
			var r *core.Result
			for i := 0; i < b.N; i++ {
				a := core.NewAnalyzer(cfg)
				var err error
				r, err = a.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.FFInject.Experiments), "experiments")
			b.ReportMetric(float64(r.FFCost()), "sim-instrs")
		})
	}
}

// BenchmarkAblationPruneScope quantifies the pruning-scope asymmetry on
// FFT: the baseline prunes globally, FastFlip per section instance (§6.2).
func BenchmarkAblationPruneScope(b *testing.B) {
	p := bench.MustBuild("fft", bench.None)
	tr, err := trace.Record(p)
	if err != nil {
		b.Fatal(err)
	}
	var global, perSection int
	for i := 0; i < b.N; i++ {
		global = len(sites.Global(tr, sites.Options{Prune: true}))
		perSection = 0
		for _, inst := range tr.Instances {
			perSection += len(sites.ForInstance(tr, inst, sites.Options{Prune: true}))
		}
	}
	b.ReportMetric(float64(global), "global-pilots")
	b.ReportMetric(float64(perSection), "per-section-pilots")
	b.ReportMetric(float64(perSection)/float64(global), "pilot-inflation")
}

// BenchmarkAblationSensSamples measures sensitivity estimation at
// different sample counts and reports the estimated amplification drift.
func BenchmarkAblationSensSamples(b *testing.B) {
	p := bench.MustBuild("lud", bench.None)
	tr, err := trace.Record(p)
	if err != nil {
		b.Fatal(err)
	}
	inst := tr.Instances[1] // BDIV#0: two inputs, one output
	for _, samples := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("%dsamples", samples), func(b *testing.B) {
			cfg := sens.DefaultConfig()
			cfg.Samples = samples
			var k float64
			for i := 0; i < b.N; i++ {
				amp, _ := sens.Analyze(tr, inst, cfg)
				k = amp.K[0][1]
			}
			b.ReportMetric(float64(samples), "samples")
			b.ReportMetric(k, "K-diag-input")
		})
	}
}

// BenchmarkAblationBurstWidth runs the SHA2 analysis under widening
// multi-bit burst error models (§4.8) and reports the SDC-bad fraction.
func BenchmarkAblationBurstWidth(b *testing.B) {
	p := bench.MustBuild("sha2", bench.None)
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("width%d", width), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.BurstWidth = width
			var badFrac float64
			for i := 0; i < b.N; i++ {
				a := core.NewAnalyzer(cfg)
				r, err := a.Analyze(p)
				if err != nil {
					b.Fatal(err)
				}
				st := r.FFOutcomeStats(0)
				badFrac = float64(st.SDCBad+st.Untested) / float64(st.Total())
			}
			b.ReportMetric(badFrac, "sdc-bad-fraction")
		})
	}
}

// BenchmarkAblationGreedy compares the knapsack DP against the value
// density greedy heuristic on LUD's real value/cost data.
func BenchmarkAblationGreedy(b *testing.B) {
	s := sharedSuite(b)
	run := s.Get("lud", bench.None)
	items := run.R.Items(run.R.FFBadCounts(0))
	const target = 0.90
	b.Run("dp", func(b *testing.B) {
		var cost int
		for i := 0; i < b.N; i++ {
			solver := knap.New(items)
			sel, err := solver.MinCostFor(target)
			if err != nil {
				b.Fatal(err)
			}
			cost = sel.Cost
		}
		b.ReportMetric(float64(cost), "protect-cost")
	})
	b.Run("greedy", func(b *testing.B) {
		var cost int
		for i := 0; i < b.N; i++ {
			cost = knap.Greedy(items, target).Cost
		}
		b.ReportMetric(float64(cost), "protect-cost")
	})
}

// --- replay engine microbenchmarks ---

// BenchmarkInjectSection runs one section's full injection campaign under
// the cursor/delta engine and the legacy per-experiment replay engine.
// Outcomes are identical; the engines differ in clean-prefix work and
// allocations (run with -benchmem).
func BenchmarkInjectSection(b *testing.B) {
	p := bench.MustBuild("fft", bench.None)
	tr, err := trace.Record(p)
	if err != nil {
		b.Fatal(err)
	}
	inst := tr.Instances[len(tr.Instances)/2]
	classes := sites.ForInstance(tr, inst, sites.Options{Prune: true})
	for _, legacy := range []bool{false, true} {
		name := "cursor"
		if legacy {
			name = "legacy"
		}
		b.Run(name, func(b *testing.B) {
			inj := &inject.Injector{T: tr, Legacy: legacy}
			b.ReportAllocs()
			b.ResetTimer()
			var stats inject.Stats
			for i := 0; i < b.N; i++ {
				_, stats = inj.RunSection(context.Background(), inst, classes)
			}
			b.ReportMetric(float64(stats.SimInstrs), "accounted-instrs")
			b.ReportMetric(float64(stats.CleanInstrs), "clean-instrs")
			b.ReportMetric(float64(stats.FaultyInstrs), "faulty-instrs")
		})
	}
}

// BenchmarkRestore compares reverting a machine after a bounded run via
// journal undo (delta restore) against a full state copy. The run itself
// happens with the timer stopped, so the figures isolate the revert.
// Campipe has the largest memory image (5k words), where the delta restore
// pays off most.
func BenchmarkRestore(b *testing.B) {
	p := bench.MustBuild("campipe", bench.None)
	tr, err := trace.Record(p)
	if err != nil {
		b.Fatal(err)
	}
	const span = 64 // dynamic instructions executed before each revert
	b.Run("journal", func(b *testing.B) {
		base := tr.Start.Clone()
		m := base.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m.BeginJournal()
			if ev := m.RunUntilDyn(base.Dyn + span); ev.Kind != vm.EvNone {
				b.Fatal(ev.Kind)
			}
			b.StartTimer()
			if !m.UndoJournal() {
				b.Fatal("journal overflow")
			}
			m.CopyScalarsFrom(base)
		}
	})
	b.Run("full", func(b *testing.B) {
		base := tr.Start.Clone()
		m := base.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if ev := m.RunUntilDyn(base.Dyn + span); ev.Kind != vm.EvNone {
				b.Fatal(ev.Kind)
			}
			b.StartTimer()
			m.RestoreFrom(base)
		}
	})
}

var benchSink string

// sink defeats dead-code elimination of rendered tables.
func sink(b *testing.B, s string) {
	if s == "" {
		b.Fatal("empty artifact")
	}
	benchSink = s
}
