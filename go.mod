module fastflip

go 1.22
