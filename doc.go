// Package fastflip is a compositional SDC (silent data corruption)
// resiliency analysis toolkit — a from-scratch implementation of the
// FastFlip approach (Joshi et al., CGO 2025) together with every substrate
// it needs: a small register ISA with an architectural simulator, an
// Approxilyzer-style per-instruction error injection analysis, a local
// sensitivity analysis, a Chisel-style symbolic SDC propagation analysis,
// and a knapsack-based protection selector.
//
// # What it does
//
// Transient hardware errors (bitflips in CPU registers) can silently
// corrupt program outputs. Selective instruction duplication can detect
// them, but deciding *which* instructions to protect requires an error
// injection analysis that is expensive and, classically, monolithic: any
// code change invalidates all of it. FastFlip partitions an execution into
// developer-declared sections, injects errors into each section in
// isolation, symbolically propagates each section's possible corruption to
// the program outputs, and recombines the pieces. When the program is
// modified, only the modified sections (and sections whose inputs changed)
// are re-injected; everything else is reused from a store.
//
// # Layout
//
// The root package re-exports the public surface:
//
//   - building programs: NewModule, NewFunc, Module, FuncBuilder
//   - describing workloads: Program, Section, InstanceIO, Buffer
//   - running analyses: NewAnalyzer, Analyzer, Config, Result, TargetEval
//   - persisting results: Store, LoadStore
//   - the paper's benchmarks: Benchmarks, BuildBenchmark
//   - the paper's evaluation: RunEvaluation, EvalOptions, Suite
//
// See examples/quickstart for a complete end-to-end walkthrough and
// DESIGN.md for the mapping from the paper to the implementation.
package fastflip
