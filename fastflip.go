package fastflip

import (
	"fastflip/internal/bench"
	"fastflip/internal/chisel"
	"fastflip/internal/core"
	"fastflip/internal/knap"
	"fastflip/internal/lang"
	"fastflip/internal/metrics"
	"fastflip/internal/ostore"
	"fastflip/internal/prog"
	"fastflip/internal/sens"
	"fastflip/internal/spec"
	"fastflip/internal/store"
	"fastflip/internal/tables"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

// Program construction. A Module is a set of named, position-independent
// functions; Link flattens it into executable code.
type (
	// Module is a collection of functions prior to linking.
	Module = prog.Program
	// Func is one named function.
	Func = prog.Function
	// FuncBuilder emits instructions and resolves labels.
	FuncBuilder = prog.B
	// Linked is an executable, flattened program.
	Linked = prog.Linked
	// StaticID identifies a static instruction stably across versions.
	StaticID = prog.StaticID
)

// NewModule returns an empty module.
func NewModule() *Module { return prog.New() }

// NewFunc starts building a function.
func NewFunc(name string) *FuncBuilder { return prog.NewFunc(name) }

// KernelBindings maps minilang buffer parameter names to memory addresses.
type KernelBindings = lang.Bindings

// CompileKernels compiles minilang source (see internal/lang) into ISA
// functions, one per kernel, ready to Add to a Module:
//
//	kernel sumsq(v: float[4], s: float[1]) {
//	    var acc: float = 0.0;
//	    for i = 0 to 4 { acc = acc + v[i] * v[i]; }
//	    s[0] = acc;
//	}
func CompileKernels(src string, binds KernelBindings) ([]*Func, error) {
	return lang.Compile(src, binds)
}

// Workload description: the analysis inputs of FastFlip §4.1.
type (
	// Program describes one analyzable program version: linked code,
	// memory initialization, section partition, and final outputs.
	Program = spec.Program
	// Section is one static program section.
	Section = spec.Section
	// InstanceIO declares one section instance's inputs/outputs/live set.
	InstanceIO = spec.InstanceIO
	// Buffer is a named contiguous memory range.
	Buffer = spec.Buffer
	// BufKind distinguishes float and integer buffers.
	BufKind = spec.BufKind
)

// Buffer kinds.
const (
	Float = spec.Float
	Int   = spec.Int
)

// Execution substrate.
type (
	// Machine is the architectural simulator state.
	Machine = vm.Machine
	// Trace is a recorded error-free execution with section instances.
	Trace = trace.Trace
)

// RecordTrace executes p cleanly and captures its trace.
func RecordTrace(p *Program) (*Trace, error) { return trace.Record(p) }

// Analysis pipeline.
type (
	// Config holds the analysis parameters (targets, ε, pruning, …).
	Config = core.Config
	// Analyzer runs FastFlip across program versions with reuse.
	Analyzer = core.Analyzer
	// Result is the analysis of one program version.
	Result = core.Result
	// TargetEval compares FastFlip against the baseline for one target.
	TargetEval = core.TargetEval
	// BadCounts attributes SDC-Bad sites to static instructions.
	BadCounts = core.BadCounts
	// Selection is a chosen set of instructions to protect.
	Selection = knap.Selection
	// HardenEval is the measured outcome of the protection loop
	// (Analyzer.Harden): the applied selection, the hardened program, and
	// its residual SDC against the predicted bound.
	HardenEval = core.HardenEval
	// Outcome classifies one injection experiment.
	Outcome = metrics.Outcome
	// Summary is the machine-readable digest of one analysis (the shape
	// fastflip -json and the ffserved API emit).
	Summary = core.Summary
	// Progress is a live snapshot of a running Analyze campaign,
	// reported through Analyzer.Progress.
	Progress = core.Progress
	// SensConfig controls the local sensitivity analysis.
	SensConfig = sens.Config
	// PropagationSpec is the composed end-to-end SDC specification.
	PropagationSpec = chisel.Spec
	// Store persists per-section results across versions.
	Store = store.Store
	// SharedStore is the disk-backed, content-addressed outcome tier
	// shared across processes and tenants (attach with Store.WithTier and
	// SharedStore.AsTier).
	SharedStore = ostore.Store
	// SharedStoreOptions configure OpenSharedStore.
	SharedStoreOptions = ostore.Options
)

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewAnalyzer returns an analyzer with a fresh store.
func NewAnalyzer(cfg Config) *Analyzer { return core.NewAnalyzer(cfg) }

// NewStore returns an empty result store.
func NewStore() *Store { return store.New() }

// LoadStore reads a store previously written with Store.Save.
func LoadStore(path string) (*Store, error) { return store.Load(path) }

// OpenSharedStore opens (creating if necessary) the shared outcome tier
// in opts.Dir. Any number of processes may share one directory.
func OpenSharedStore(opts SharedStoreOptions) (*SharedStore, error) { return ostore.Open(opts) }

// The paper's benchmarks (Table 1) and evaluation harness.
type (
	// Variant selects a benchmark version: None, Small, or Large.
	Variant = bench.Variant
	// Suite holds a full evaluation run and renders the paper's tables.
	Suite = tables.Suite
	// EvalOptions configures RunEvaluation.
	EvalOptions = tables.Options
)

// Benchmark variants.
const (
	None  = bench.None
	Small = bench.Small
	Large = bench.Large
)

// Benchmarks returns the registered benchmark names.
func Benchmarks() []string { return bench.Names() }

// BuildBenchmark constructs one benchmark version.
func BuildBenchmark(name string, v Variant) (*Program, error) { return bench.Build(name, v) }

// DefaultEvalOptions mirrors the paper's evaluation setup.
func DefaultEvalOptions() EvalOptions { return tables.DefaultOptions() }

// RunEvaluation analyzes the requested benchmarks in all three versions
// and returns a Suite that renders Tables 1-4, §6.4, Figure 1, and Eq. 2.
func RunEvaluation(opts EvalOptions) (*Suite, error) { return tables.RunSuite(opts) }
