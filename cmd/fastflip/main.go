// Command fastflip analyzes one benchmark version with the FastFlip
// pipeline, optionally reusing and updating a persistent section store —
// the workflow a developer would run from CI after each commit.
//
// Usage:
//
//	fastflip -bench lud                       # analyze the original version
//	fastflip -bench lud -store lud.ffs        # ... and persist section results
//	fastflip -bench lud -variant small -store lud.ffs -modified
//	                                          # re-analyze after a change, reusing the store
//	fastflip -bench lud -list                 # print the selected instructions
//	fastflip -bench lud -harden -target 0.95  # apply the selection as detectors
//	                                          # and measure the residual SDC
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"fastflip"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fastflip: ")
	var (
		benchName = flag.String("bench", "", "benchmark to analyze (required; one of "+strings.Join(fastflip.Benchmarks(), ", ")+")")
		variant   = flag.String("variant", "none", "benchmark version: none, small, large")
		storePath = flag.String("store", "", "path of the persistent section store (loaded if present, saved after)")
		modified  = flag.Bool("modified", false, "treat this version as a modification of the last stored analysis (§4.10)")
		targets   = flag.String("targets", "0.90,0.95,0.99", "comma-separated protection value targets")
		eps       = flag.Float64("eps", 0, "SDC-Bad threshold ε (SDCs up to ε are acceptable)")
		workers   = flag.Int("workers", 0, "injection worker goroutines (0 = GOMAXPROCS)")
		baseline  = flag.Bool("baseline", true, "also run the monolithic baseline (needed for utility comparison)")
		list      = flag.Bool("list", false, "print the selected instructions for the first target")
		spec      = flag.Bool("spec", false, "print the composed end-to-end SDC specification")
		report    = flag.Bool("report", false, "print the per-instruction vulnerability report")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON (the shape ffserved returns) instead of text")
		walDir    = flag.String("wal-dir", "", "write-ahead campaign log directory (crash-safe persistence of completed experiments)")
		resume    = flag.Bool("resume", false, "with -wal-dir: merge experiments a previous (crashed) run logged and re-execute only the remainder")
		noElide   = flag.Bool("no-elide", false, "disable the static masking tier (simulate every experiment instead of proving masked bits)")
		noBatch   = flag.Bool("no-batch", false, "disable lockstep batch replay (run every faulty replica as a scalar fork)")
		sharedDir = flag.String("shared-store", "", "directory of the shared content-addressed outcome tier (sections analyzed by any process using the same directory are reused, fresh ones published back)")
		tenant    = flag.String("tenant", "cli", "tenant name attributed in the shared store (with -shared-store)")
		hardenOn  = flag.Bool("harden", false, "apply the knapsack selection as duplication-and-compare detectors, re-inject the hardened program, and report the measured residual SDC against the predicted bound")
		hardenTgt = flag.Float64("target", 0.95, "with -harden: protection value target the selection is solved for")
		dumpAsm   = flag.Bool("dump-hardened", false, "with -harden: print the hardened program's disassembly")
	)
	flag.Parse()
	if *benchName == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := fastflip.DefaultConfig()
	cfg.Workers = *workers
	cfg.WALDir = *walDir
	cfg.Resume = *resume
	cfg.Elide = !*noElide
	cfg.NoBatch = *noBatch
	if *resume && *walDir == "" {
		log.Fatal("-resume requires -wal-dir")
	}
	cfg.Targets = nil
	for _, f := range strings.Split(*targets, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("bad target %q: %v", f, err)
		}
		cfg.Targets = append(cfg.Targets, v)
	}

	a := fastflip.NewAnalyzer(cfg)
	if *storePath != "" {
		if st, err := fastflip.LoadStore(*storePath); err == nil {
			a.Store = st
			if !*jsonOut {
				fmt.Printf("loaded store %s (%d sections)\n", *storePath, len(st.Sections))
			}
		} else if !os.IsNotExist(err) {
			// A missing store is the first-run case; anything else is real.
			if !strings.Contains(err.Error(), "no such file") {
				log.Fatal(err)
			}
		}
	}

	var shared *fastflip.SharedStore
	if *sharedDir != "" {
		var err error
		shared, err = fastflip.OpenSharedStore(fastflip.SharedStoreOptions{Dir: *sharedDir})
		if err != nil {
			log.Fatal(err)
		}
		a.Store.WithTier(shared.AsTier(*tenant))
	}

	p, err := fastflip.BuildBenchmark(*benchName, fastflip.Variant(*variant))
	if err != nil {
		log.Fatal(err)
	}
	if *modified {
		a.NoteModification()
	}

	r, err := a.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range r.WALNotes {
		log.Printf("wal: %s", n)
	}
	if r.WALDegraded {
		log.Printf("warning: campaign log degraded after persistent write failures; results are memory-only and a resume will re-inject the affected sections")
	}
	if r.PanicRetries > 0 {
		log.Printf("warning: %d experiment(s) panicked once and succeeded on a retried clean machine", r.PanicRetries)
	}
	for _, p := range r.Poisoned {
		log.Printf("warning: experiment quarantined after %d panics (class %v/%v.bit%d, machine %016x); outcome filled conservatively",
			p.Attempts, p.Key.Static, p.Key.Role, p.Key.Bit, p.MachineFP)
	}

	var evals []fastflip.TargetEval
	if *baseline {
		a.RunBaseline(r)
		if evals, err = a.Evaluate(r, *eps, *modified); err != nil {
			log.Fatal(err)
		}
	}

	var h *fastflip.HardenEval
	if *hardenOn {
		if h, err = a.Harden(context.Background(), r, *eps, *hardenTgt); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut {
		s := r.Summarize(*eps, evals)
		if h != nil {
			h.ApplyTo(s)
			if s.HardenedAsm, err = h.Asm(); err != nil {
				log.Fatal(err)
			}
		}
		s.Bench = *benchName
		s.Variant = *variant
		if shared != nil {
			// The handle is opened fresh per process, so its counters are
			// exactly this run's shared-tier traffic.
			st := shared.Stats()
			s.SharedHits, s.SharedMisses = int(st.Hits), int(st.Misses)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("%s/%s: %d error sites, %d dynamic instructions, %d section instances\n",
			*benchName, *variant, r.SiteCount, r.Trace.TotalDyn, len(r.Trace.Instances))
		exec, total := r.Trace.Coverage()
		fmt.Printf("static coverage: %d/%d instructions of interest executed\n", exec, total)
		fmt.Printf("FastFlip: %d experiments, %.1f Mi simulated instructions, %v wall (%d sections reused)\n",
			r.FFInject.Experiments, float64(r.FFCost())/1e6, r.FFWall.Round(1e6), r.ReusedInstances)
		if n := r.ResumedExperiments(); n > 0 {
			fmt.Printf("resumed: %d experiments recovered from the campaign log, %d re-executed\n",
				n, r.FFInject.Experiments-n)
		}
		st := r.FFOutcomeStats(*eps)
		fmt.Printf("outcomes (FastFlip labels): masked %.1f%%, detected %.1f%%, SDC-good %.1f%%, SDC-bad %.1f%%, untested %.1f%%\n",
			pct(st.Masked, st.Total()), pct(st.Detected, st.Total()),
			pct(st.SDCGood, st.Total()), pct(st.SDCBad, st.Total()), pct(st.Untested, st.Total()))

		if *spec {
			for λ, out := range p.FinalOutputs {
				fmt.Printf("d(%s) <= %s\n", out.Name, r.FormatSpec(λ))
			}
		}

		if *baseline {
			fmt.Printf("baseline: %d experiments, %.1f Mi simulated instructions, %v wall (%.1fx)\n",
				r.BaseInject.Experiments, float64(r.BaseCost())/1e6, r.BaseWall.Round(1e6),
				float64(r.BaseCost())/float64(r.FFCost()))
			for _, ev := range evals {
				fmt.Printf("target %.3f (adjusted %.4f): achieved %.4f, cost %.3f vs baseline %.3f (diff %+.4f)\n",
					ev.Target, ev.Adjusted, ev.Achieved, ev.FFCostFrac, ev.BaseCostFrac, ev.CostDiff)
			}
			if *list && len(evals) > 0 {
				sel := evals[0].FF
				ids := append([]fastflip.StaticID(nil), sel.IDs...)
				sort.Slice(ids, func(i, j int) bool {
					if ids[i].Func != ids[j].Func {
						return ids[i].Func < ids[j].Func
					}
					return ids[i].Local < ids[j].Local
				})
				fmt.Printf("\nselected instructions for target %.3f (%d instructions, cost %d):\n",
					evals[0].Target, len(ids), sel.Cost)
				for _, id := range ids {
					fmt.Printf("  %s\n", id)
				}
			}
		}

		if h != nil {
			orig := r.FFBadCounts(*eps).Total
			fmt.Printf("hardened (target %.3f): %d instructions protected (%d ineligible), +%d instructions, %d spills\n",
				h.Target, len(h.Protected), len(h.Skipped), h.AddedInstrs, h.Spills)
			fmt.Printf("residual SDC: %d measured <= %d predicted (unhardened %d); detector coverage %.1f%%, %d detector triggers, %.1f%% dynamic overhead\n",
				h.ResidualSDC, h.PredictedResidual, orig,
				100*h.DetectorCoverage, h.DetectorTriggers, 100*h.ProtectionOverhead)
			if *dumpAsm {
				text, err := h.Asm()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Println()
				fmt.Print(text)
			}
		}

		if *report {
			fmt.Println()
			if err := r.WriteReport(os.Stdout, *eps); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *storePath != "" {
		if err := a.Store.Save(*storePath); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("saved store %s (%d sections)\n", *storePath, len(a.Store.Sections))
		}
	}
	if shared != nil {
		// Close publishes the sections this run staged so other processes
		// sharing the directory can reuse them.
		if err := shared.Close(); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			st := shared.Stats()
			fmt.Printf("shared store: %d hits, %d misses, %d sections on disk\n", st.Hits, st.Misses, st.Sections)
		}
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
