// Command ffserved runs the FastFlip analysis service: a resident daemon
// that accepts analysis jobs over HTTP, runs them on a bounded worker
// pool, and keeps section stores in memory so repeated submissions reuse
// per-section results across requests (§4.7 across processes).
//
// Usage:
//
//	ffserved                      # listen on :8080
//	ffserved -addr :9000 -jobs 2  # two concurrent analysis jobs
//
// Submit and poll with curl:
//
//	curl -X POST localhost:8080/v1/jobs -d '{"bench":"fft","variant":"small"}'
//	curl localhost:8080/v1/jobs/job-1
//	curl -X DELETE localhost:8080/v1/jobs/job-1
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains running jobs
// for up to -drain, then hard-cancels whatever is left and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"fastflip/internal/server"
	"fastflip/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("ffserved: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		jobs    = flag.Int("jobs", 1, "concurrent analysis jobs")
		queue   = flag.Int("queue", 64, "maximum queued jobs")
		retain  = flag.Int("retain", 64, "finished jobs retained for retrieval")
		workers = flag.Int("workers", 0, "default injection worker goroutines per job (0 = GOMAXPROCS)")
		drain   = flag.Duration("drain", 30*time.Second, "how long to let running jobs finish on shutdown")
		debug   = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		walDir  = flag.String("wal-dir", "", "write-ahead campaign log directory; a job re-POSTed over a crashed campaign resumes it and reports resumed_experiments")
		benches = flag.Int("max-benches", 0, "benchmark stores kept in the cache, LRU-evicted beyond this (0 = unlimited)")
	)
	flag.Parse()

	if *debug != "" {
		// pprof lives on its own mux and listener so profiling endpoints
		// are never exposed on the service address.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *debug)
			dsrv := &http.Server{Addr: *debug, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	mgr := service.New(service.Options{
		Workers:          *jobs,
		QueueDepth:       *queue,
		MaxRetained:      *retain,
		InjectWorkers:    *workers,
		WALDir:           *walDir,
		MaxCachedBenches: *benches,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(mgr, log.Default()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d job workers, queue %d)", *addr, *jobs, *queue)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down, draining jobs for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := mgr.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("drain timed out, running jobs cancelled: %v", err)
	}
	log.Printf("bye")
}
