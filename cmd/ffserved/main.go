// Command ffserved runs the FastFlip analysis service: a resident daemon
// that accepts analysis jobs over HTTP, runs them on a bounded worker
// pool, and keeps section stores in memory so repeated submissions reuse
// per-section results across requests (§4.7 across processes).
//
// Usage:
//
//	ffserved                      # listen on :8080
//	ffserved -addr :9000 -jobs 2  # two concurrent analysis jobs
//
// Submit and poll with curl:
//
//	curl -X POST localhost:8080/v1/jobs -d '{"bench":"fft","variant":"small"}'
//	curl localhost:8080/v1/jobs/job-1
//	curl -X DELETE localhost:8080/v1/jobs/job-1
//
// A job with "harden": true (optionally "harden_target": 0.95) closes the
// protection loop: the selected instructions are hardened with
// duplication-and-compare detectors, the hardened program is re-injected,
// and the result reports the measured residual SDC, detector coverage,
// and the hardened disassembly (result.hardened_asm, fasm syntax). The
// /metrics endpoint counts hardened_jobs and detector_triggers.
//
// Distributed campaigns connect several ffserved processes:
//
//	ffserved -worker -addr :8081            # injection worker, no job API
//	ffserved -addr :8080 -peers http://host:8081,http://host:8082
//
// A coordinator (-peers) shards each section's experiments across its
// registered workers and merges the streamed results; workers can also be
// registered at runtime via POST /v1/workers {"url": "..."}.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains running jobs
// for up to -drain, then hard-cancels whatever is left and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fastflip/internal/coord"
	"fastflip/internal/core"
	"fastflip/internal/ostore"
	"fastflip/internal/server"
	"fastflip/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("ffserved: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		jobs     = flag.Int("jobs", 1, "concurrent analysis jobs")
		queue    = flag.Int("queue", 64, "maximum queued jobs")
		retain   = flag.Int("retain", 64, "finished jobs retained for retrieval")
		workers  = flag.Int("workers", 0, "default injection worker goroutines per job (0 = GOMAXPROCS)")
		drain    = flag.Duration("drain", 30*time.Second, "how long to let running jobs finish on shutdown")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		walDir   = flag.String("wal-dir", "", "write-ahead campaign log directory; a job re-POSTed over a crashed campaign resumes it and reports resumed_experiments")
		benches  = flag.Int("max-benches", 0, "benchmark stores kept in the cache, LRU-evicted beyond this (0 = unlimited)")
		workMode = flag.Bool("worker", false, "run as a shard worker: serve only POST /v1/shard and GET /healthz, no job API")
		workerID = flag.String("worker-id", "", "worker identity reported to coordinators (default worker-<pid>)")
		peers    = flag.String("peers", "", "comma-separated worker base URLs; turns this daemon into a campaign coordinator")
		noElide  = flag.Bool("no-elide", false, "disable the static masking tier for every job (simulate all experiments)")
		noBatch  = flag.Bool("no-batch", false, "disable lockstep batch replay for every job (scalar forks only)")
		shared   = flag.String("shared-store", "", "directory of the shared content-addressed outcome tier; several ffserved processes may point at the same directory")
		sharedQ  = flag.Int64("shared-quota", 0, "per-tenant live byte quota in the shared store, oldest sections evicted beyond it (0 = unlimited)")
		tenantQ  = flag.Int("tenant-jobs", 0, "per-tenant active-job quota, submissions beyond it get 429 (0 = unlimited)")
		token    = flag.String("worker-token", "", "shared secret for worker shard endpoints: workers refuse leases without it, coordinators send it as a bearer token")
		shardTO  = flag.Duration("shard-timeout", 0, "coordinator cap on one shard dispatch's deadline budget (0 = default 2m)")
	)
	flag.Parse()

	if *workMode {
		runWorker(*addr, *workerID, *workers, *token)
		return
	}

	if *debug != "" {
		// pprof lives on its own mux and listener so profiling endpoints
		// are never exposed on the service address.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *debug)
			dsrv := &http.Server{Addr: *debug, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	var co *coord.Coordinator
	if *peers != "" {
		co = coord.NewCoordinator(coord.Options{Logf: log.Printf, WorkerToken: *token, ShardTimeout: *shardTO})
		defer co.Close()
		for _, url := range strings.Split(*peers, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			id, err := co.AddWorker(url)
			if err != nil {
				// A peer that is down at startup is a warning, not fatal: it
				// can be registered later via POST /v1/workers once it is up.
				log.Printf("peer %s unreachable, not registered: %v", url, err)
				continue
			}
			log.Printf("registered worker %s at %s", id, url)
		}
	}

	var sharedStore *ostore.Store
	if *shared != "" {
		var err error
		sharedStore, err = ostore.Open(ostore.Options{Dir: *shared, TenantQuotaBytes: *sharedQ})
		if err != nil {
			log.Fatalf("shared store: %v", err)
		}
		defer func() {
			if err := sharedStore.Close(); err != nil {
				log.Printf("shared store close: %v", err)
			}
		}()
		log.Printf("shared outcome tier at %s", *shared)
	}

	mgr := service.New(service.Options{
		Workers:          *jobs,
		QueueDepth:       *queue,
		MaxRetained:      *retain,
		InjectWorkers:    *workers,
		WALDir:           *walDir,
		MaxCachedBenches: *benches,
		Coordinator:      co,
		Shared:           sharedStore,
		MaxTenantActive:  *tenantQ,
		ConfigHook: func(cfg *core.Config) {
			cfg.Elide = !*noElide
			cfg.NoBatch = *noBatch
		},
	})
	handler := server.New(mgr, log.Default())
	if co != nil {
		handler.WithCoordinator(co)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (%d job workers, queue %d)", *addr, *jobs, *queue)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down, draining jobs for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := mgr.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("drain timed out, running jobs cancelled: %v", err)
	}
	log.Printf("bye")
}

// runWorker serves the shard-worker API and nothing else: a worker holds
// no job queue, no store cache, and no WAL — every lease it runs streams
// straight back to the coordinator that owns the campaign.
func runWorker(addr, id string, injectWorkers int, token string) {
	w := coord.NewWorker(coord.WorkerOptions{ID: id, Workers: injectWorkers, Token: token})
	srv := &http.Server{Addr: addr, Handler: w, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("worker %s listening on %s", w.ID(), addr)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("worker bye")
}
