// Command fffuzz runs differential fuzzing campaigns over generated
// minilang programs, checking the five invariants of the compositional
// analysis (see internal/diffcheck):
//
//	sound        composed SDC bound covers the monolithic co-run truth
//	incremental  re-analysis after an edit equals from-scratch analysis
//	resume       killed+resumed campaign converges to the uninterrupted one
//	engines      legacy and cursor replay engines agree per class
//	harden       protect-everything hardening preserves fault-free semantics
//
// Usage:
//
//	fffuzz -seed 1 -n 200                      # all five, round-robin
//	fffuzz -seed 7 -n 50 -invariant sound      # one invariant only
//	fffuzz -repro corpus/sound-0000...json     # re-run a saved reproducer
//
// Violations are shrunk to minimal reproducers and written to -corpus;
// the exit status is non-zero when any check failed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"fastflip/internal/diffcheck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fffuzz: ")
	var (
		seed      = flag.Uint64("seed", 1, "campaign master seed")
		n         = flag.Int("n", 100, "number of checks to run")
		invariant = flag.String("invariant", "", "restrict to one invariant: sound, incremental, resume, engines, harden (default all)")
		corpus    = flag.String("corpus", "diffcheck-corpus", "directory for shrunk reproducers")
		noShrink  = flag.Bool("no-shrink", false, "report violations without minimizing them")
		repro     = flag.String("repro", "", "re-run a saved reproducer JSON file and exit")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	if *repro != "" {
		rep, err := diffcheck.ReadReproducer(*repro)
		if err != nil {
			log.Fatal(err)
		}
		if v := rep.Recheck(); v != nil {
			fmt.Printf("reproduced: %v\n", v)
			os.Exit(1)
		}
		fmt.Printf("%s: invariant %q holds (fixed?)\n", *repro, rep.Invariant)
		return
	}

	opts := diffcheck.Options{
		Seed:      *seed,
		N:         *n,
		CorpusDir: *corpus,
		NoShrink:  *noShrink,
	}
	if !*quiet {
		opts.Log = log.Printf
	}
	if *invariant != "" {
		inv := diffcheck.Invariant(*invariant)
		valid := false
		for _, known := range diffcheck.Invariants {
			if inv == known {
				valid = true
			}
		}
		if !valid {
			log.Fatalf("unknown invariant %q (have: sound, incremental, resume, engines, harden)", *invariant)
		}
		opts.Invariants = []diffcheck.Invariant{inv}
	}

	rep, err := opts.Run()
	if err != nil {
		log.Fatal(err)
	}

	var parts []string
	for _, inv := range diffcheck.Invariants {
		if c := rep.Checked[inv]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", inv, c))
		}
	}
	sort.Strings(parts)
	fmt.Printf("checked %d programs (%s): %d violation(s)\n",
		*n, strings.Join(parts, " "), len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %v\n", v)
	}
	for _, p := range rep.Reproducers {
		fmt.Printf("  reproducer: %s\n", p)
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}
