// Command ffbench runs the FastFlip evaluation and regenerates the paper's
// tables and figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	ffbench                         # everything, all benchmarks
//	ffbench -benchmarks lud,sha2    # a subset
//	ffbench -artifact table3        # one artifact
//	ffbench -quick                  # fewer sensitivity samples
//	ffbench -out bench.json         # machine-readable perf record
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fastflip/internal/sens"
	"fastflip/internal/tables"
)

func main() {
	var (
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default all)")
		artifact   = flag.String("artifact", "all", "one of: all, table1, table2, table3, table4, table6.4, figure1, eq2")
		workers    = flag.Int("workers", 0, "injection worker goroutines (0 = GOMAXPROCS)")
		quick      = flag.Bool("quick", false, "fewer sensitivity samples for a faster run")
		quiet      = flag.Bool("quiet", false, "suppress per-version progress lines")
		out        = flag.String("out", "", "write per-version perf records (wall time, sim-instrs, clean/faulty split, speedup) as JSON to this file")
		walDir     = flag.String("wal-dir", "", "write-ahead campaign log directory (crash-safe persistence of completed experiments)")
		resume     = flag.Bool("resume", false, "with -wal-dir: merge experiments a previous (crashed) run logged and re-execute only the remainder")
		noElide    = flag.Bool("no-elide", false, "disable the static masking tier (simulate every experiment instead of proving masked bits)")
		noBatch    = flag.Bool("no-batch", false, "disable lockstep batch replay (run every faulty replica as a scalar fork)")
	)
	flag.Parse()

	if *resume && *walDir == "" {
		fmt.Fprintln(os.Stderr, "ffbench: -resume requires -wal-dir")
		os.Exit(2)
	}

	opts := tables.DefaultOptions()
	opts.Workers = *workers
	opts.WALDir = *walDir
	opts.Resume = *resume
	opts.NoElide = *noElide
	opts.NoBatch = *noBatch
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *quick {
		cfg := sens.DefaultConfig()
		cfg.Samples = 16
		opts.Sens = cfg
	}
	if !*quiet {
		opts.Log = os.Stderr
	}

	suite, err := tables.RunSuite(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffbench:", err)
		os.Exit(1)
	}

	emit := func(name string, body string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(body)
	}

	want := func(name string) bool { return *artifact == "all" || *artifact == name }

	if want("table1") {
		fmt.Println(suite.Table1())
	}
	hasLUD := suite.Get("lud", "none") != nil
	if want("eq2") && hasLUD {
		body, err := suite.Eq2("lud")
		emit("eq2", body, err)
	}
	if want("figure1") && hasLUD {
		body, err := suite.Figure1("lud")
		emit("figure1", body, err)
	}
	if want("table2") {
		fmt.Println(suite.Table2())
	}
	if want("table3") {
		fmt.Println(suite.Table3())
	}
	if want("table4") {
		fmt.Println(suite.Table4())
	}
	if want("table6.4") {
		fmt.Println(suite.Table64())
	}

	if *out != "" {
		data, err := json.MarshalIndent(suite.PerfRecords(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffbench: encode perf records:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ffbench:", err)
			os.Exit(1)
		}
	}
}
