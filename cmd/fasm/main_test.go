package main

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"fastflip/internal/inject"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sites"
)

// buildSegment writes a real WAL segment — two experiments, a sensitivity
// record, one quarantined experiment, and a seal — and returns its path.
func buildSegment(t *testing.T) (string, [32]byte, uint64) {
	t.Helper()
	dir := t.TempDir()
	var key [32]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	const fp = uint64(0x1122334455667788)
	w, _, err := inject.OpenSectionWAL(dir, key, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	for bit := uint8(0); bit < 2; bit++ {
		rec := inject.WALRecord{
			Key:  sites.ClassKey{Static: prog.StaticID{Func: "k1", Local: 3}, Bit: bit},
			Out:  metrics.Outcome{Kind: metrics.Masked},
			Cost: inject.Stats{Experiments: 1, SimInstrs: 10},
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendAmp(inject.WALAmp{K: [][]float64{{1.5}}, Runs: 4, SimInstrs: 40}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPoison(inject.WALPoison{
		Key: sites.ClassKey{Static: prog.StaticID{Func: "k1", Local: 9}}, Attempts: 2, MachineFP: 0xabcd, Stack: "stack",
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendShard(inject.WALShard{Worker: "worker-7", Epoch: 3, Lo: 0, Hi: 2, Records: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return inject.SegmentPath(dir, key), key, fp
}

// parseWALInfo splits the report into its "label: value" map.
func parseWALInfo(t *testing.T, report string) map[string]string {
	t.Helper()
	fields := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(report, "\n"), "\n") {
		label, value, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("line %q is not label: value", line)
		}
		fields[strings.TrimSpace(label)] = strings.TrimSpace(value)
	}
	return fields
}

// TestFormatWALInfo: the -wal-info report against a real sealed segment
// is parseable key:value text with the documented labels and formats.
func TestFormatWALInfo(t *testing.T) {
	path, key, fp := buildSegment(t)
	info, err := inject.InspectSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	fields := parseWALInfo(t, formatWALInfo(path, info))

	want := map[string]string{
		"segment":     path,
		"format":      "v2",
		"section key": fmt.Sprintf("%x", key),
		"fingerprint": fmt.Sprintf("%016x", fp),
		"experiments": "2",
		"sensitivity": "true",
		"sealed":      "true",
		"poisoned":    "1 quarantined experiment(s) with panic diagnostics",
		"shard":       "worker=worker-7 epoch=3 range=[0,2) records=2",
	}
	for label, wantVal := range want {
		if got, ok := fields[label]; !ok {
			t.Errorf("report missing %q line", label)
		} else if got != wantVal {
			t.Errorf("%s: got %q, want %q", label, got, wantVal)
		}
	}
	if _, ok := fields["torn tail"]; ok {
		t.Error("clean segment reports a torn tail")
	}
}

// TestFormatWALInfoTornTail: garbage appended past the last record shows
// up as the torn-tail line, and the clean-segment-only lines drop out.
func TestFormatWALInfoTornTail(t *testing.T) {
	path, _, _ := buildSegment(t)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-partial-record")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := inject.InspectSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	fields := parseWALInfo(t, formatWALInfo(path, info))
	if got := fields["torn tail"]; got != "19 bytes (resume will truncate)" {
		t.Errorf("torn tail line: %q", got)
	}
	// The experiment records before the tail still count.
	if got := fields["experiments"]; got != "2" {
		t.Errorf("experiments after torn tail: %q", got)
	}
}

// TestFormatWALInfoMinimal: a fresh header-only segment renders without the
// conditional poisoned/torn-tail lines.
func TestFormatWALInfoMinimal(t *testing.T) {
	dir := t.TempDir()
	var key [32]byte
	w, _, err := inject.OpenSectionWAL(dir, key, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := inject.InspectSegment(inject.SegmentPath(dir, key))
	if err != nil {
		t.Fatal(err)
	}
	fields := parseWALInfo(t, formatWALInfo(inject.SegmentPath(dir, key), info))
	if fields["experiments"] != "0" || fields["sealed"] != "false" || fields["sensitivity"] != "false" {
		t.Errorf("minimal segment fields: %v", fields)
	}
	for _, absent := range []string{"poisoned", "torn tail", "shard"} {
		if _, ok := fields[absent]; ok {
			t.Errorf("minimal segment reports %q", absent)
		}
	}
}
