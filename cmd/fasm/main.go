// Command fasm assembles and disassembles programs for the fastflip ISA.
//
// Usage:
//
//	fasm -dump-bench lud                 # disassemble a benchmark to stdout
//	fasm -dump-bench lud -harden         # ... hardened: every eligible
//	                                     # instruction gets a detector
//	fasm prog.fasm                       # assemble, report sizes
//	fasm -run -entry main -mem 64 prog.fasm
//	                                     # assemble and execute, dump memory
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fastflip/internal/asm"
	"fastflip/internal/bench"
	"fastflip/internal/harden"
	"fastflip/internal/inject"
	"fastflip/internal/prog"
	"fastflip/internal/vm"
)

// formatWALInfo renders the -wal-info report. Scripts parse this as
// "key:value" lines, so the label set and formats are part of the CLI
// contract (see cmd/fasm/main_test.go).
func formatWALInfo(path string, info inject.SegmentInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "segment:     %s\n", path)
	fmt.Fprintf(&b, "format:      v%d\n", info.Version)
	fmt.Fprintf(&b, "section key: %x\n", info.Key)
	fmt.Fprintf(&b, "fingerprint: %016x\n", info.Fingerprint)
	fmt.Fprintf(&b, "experiments: %d\n", info.Experiments)
	fmt.Fprintf(&b, "sensitivity: %v\n", info.HasAmp)
	fmt.Fprintf(&b, "sealed:      %v\n", info.Sealed)
	if info.Poisoned > 0 {
		fmt.Fprintf(&b, "poisoned:    %d quarantined experiment(s) with panic diagnostics\n", info.Poisoned)
	}
	for _, s := range info.Shards {
		fmt.Fprintf(&b, "shard:       worker=%s epoch=%d range=[%d,%d) records=%d\n", s.Worker, s.Epoch, s.Lo, s.Hi, s.Records)
	}
	if info.TailBytes > 0 {
		fmt.Fprintf(&b, "torn tail:   %d bytes (resume will truncate)\n", info.TailBytes)
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fasm: ")
	var (
		dumpBench = flag.String("dump-bench", "", "disassemble a built-in benchmark (with -variant)")
		variant   = flag.String("variant", "none", "benchmark variant for -dump-bench")
		hardenAll = flag.Bool("harden", false, "with -dump-bench: protect every eligible instruction with a duplication-and-compare detector before disassembling")
		run       = flag.Bool("run", false, "execute the assembled program")
		entry     = flag.String("entry", "main", "entry function for -run")
		mem       = flag.Int("mem", 1024, "memory words for -run")
		dump      = flag.Int("dump", 8, "memory words to print after -run")
		walInfo   = flag.String("wal-info", "", "describe a write-ahead campaign log segment (records, seal state, torn tail)")
	)
	flag.Parse()

	if *walInfo != "" {
		info, err := inject.InspectSegment(*walInfo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(formatWALInfo(*walInfo, info))
		return
	}

	if *dumpBench != "" {
		p, err := bench.Build(*dumpBench, bench.Variant(*variant))
		if err != nil {
			log.Fatal(err)
		}
		if *hardenAll {
			sel := make(map[prog.StaticID]bool, len(p.Linked.Code))
			for pc := range p.Linked.Code {
				sel[p.Linked.StaticIDOf(pc)] = true
			}
			hp, res, err := harden.Program(p, sel, harden.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "hardened %s: %d instructions protected, %d ineligible, +%d instructions, %d spills\n",
				*dumpBench, len(res.Protected), len(res.Skipped), res.AddedInstrs, res.Spills)
			p = hp
		}
		mod, err := asm.ModuleOf(p.Linked)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(asm.DisassembleProgram(mod))
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	mod, err := asm.Assemble(string(src))
	if err != nil {
		log.Fatal(err)
	}
	linked, err := mod.Link(*entry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d functions, %d instructions\n", flag.Arg(0), len(linked.FuncNames), len(linked.Code))
	for i, name := range linked.FuncNames {
		fmt.Printf("  %-20s at pc %d (hash %x)\n", name, linked.FuncStarts[i], linked.FuncHashes[i][:6])
	}
	if !*run {
		return
	}
	m := vm.New(linked.Code, linked.Entry, *mem)
	ev := m.Run()
	fmt.Printf("execution: %v after %d instructions\n", ev.Kind, m.Dyn)
	if m.Status == vm.Crashed {
		fmt.Printf("crash: %v at pc %d\n", m.Crash, m.PC)
	}
	for i := 0; i < *dump && i < len(m.Mem); i++ {
		fmt.Printf("  mem[%d] = %#x\n", i, m.Mem[i])
	}
}
